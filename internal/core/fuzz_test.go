package core

import (
	"testing"

	"senss/internal/crypto/aes"
	"senss/internal/rng"
)

// randomAdversary lands exactly one randomly-chosen manipulation (drop,
// corrupt, spoof, or replay) on a randomly-chosen broadcast.
type randomAdversary struct {
	r        *rng.Rand
	procs    int
	strikeAt uint64

	// Landed is the sequence number the attack actually hit (set once).
	Landed   int64
	kindUsed string
	captured *Observed
}

func (a *randomAdversary) Tamper(seq uint64, sender int, cipher []aes.Block) map[int][]Observed {
	cp := make([]aes.Block, len(cipher))
	copy(cp, cipher)
	if a.captured == nil {
		a.captured = &Observed{Cipher: cp, Sender: sender}
	}
	if a.Landed >= 0 || seq < a.strikeAt {
		return nil
	}
	victim := a.r.Intn(a.procs)
	for victim == sender {
		victim = a.r.Intn(a.procs)
	}
	var out map[int][]Observed
	switch a.r.Intn(4) {
	case 0: // drop
		a.kindUsed = "drop"
		out = map[int][]Observed{victim: nil}
	case 1: // corrupt one bit
		a.kindUsed = "corrupt"
		bad := make([]aes.Block, len(cp))
		copy(bad, cp)
		bad[a.r.Intn(len(bad))][a.r.Intn(16)] ^= 1 << uint(a.r.Intn(8))
		out = map[int][]Observed{victim: {{Cipher: bad, Sender: sender}}}
	case 2: // spoof an extra message with a random claimed PID
		a.kindUsed = "spoof"
		fake := make([]aes.Block, len(cp))
		for i := range fake {
			fake[i] = aes.Block(a.r.Block16())
		}
		claimed := a.r.Intn(a.procs)
		for claimed == victim {
			claimed = a.r.Intn(a.procs) // victim-claimed spoofs alarm instantly; test the slow path
		}
		out = map[int][]Observed{victim: {
			{Cipher: cp, Sender: sender},
			{Cipher: fake, Sender: claimed},
		}}
	default: // replay the first captured broadcast
		a.kindUsed = "replay"
		out = map[int][]Observed{victim: {
			{Cipher: cp, Sender: sender},
			*a.captured,
		}}
	}
	a.Landed = int64(seq)
	return out
}

// TestRandomAdversaryDetectedWithinInterval is the paper's §4.3 guarantee
// as a property: WHATEVER single manipulation the adversary lands, the
// next authentication point — at most AuthInterval transfers later —
// catches it. 60 random attacks across both auth modes.
func TestRandomAdversaryDetectedWithinInterval(t *testing.T) {
	for _, mode := range []AuthMode{AuthCBC, AuthGF} {
		for trial := 0; trial < 30; trial++ {
			seed := uint64(5000 + trial)
			r := rng.New(seed)
			params := DefaultParams()
			params.AuthMode = mode
			params.AuthInterval = 4 + r.Intn(12)
			s, gid := newTestSystem(t, 4, params, seed)
			adv := &randomAdversary{r: r, procs: 4, strikeAt: uint64(r.Intn(10)), Landed: -1}
			s.SetTamperer(adv)

			detectedAt := int64(-1)
			for i := 0; i < 60; i++ {
				c2c(s, gid, i%4, (i+1)%4, randomLine(r))
				if s.Detected() {
					detectedAt = int64(i)
					break
				}
			}
			if adv.Landed < 0 {
				t.Fatalf("mode %v trial %d: adversary never struck", mode, trial)
			}
			if detectedAt < 0 {
				t.Fatalf("mode %v trial %d: %s at seq %d never detected (interval %d)",
					mode, trial, adv.kindUsed, adv.Landed, params.AuthInterval)
			}
			latency := detectedAt - adv.Landed
			if latency > int64(params.AuthInterval) {
				t.Errorf("mode %v trial %d: %s detected after %d transfers, bound %d",
					mode, trial, adv.kindUsed, latency, params.AuthInterval)
			}
		}
	}
}

// TestCleanTrafficNeverFalseAlarms drives long clean traffic across modes,
// mask counts, and intervals: zero alarms allowed.
func TestCleanTrafficNeverFalseAlarms(t *testing.T) {
	for _, mode := range []AuthMode{AuthCBC, AuthGF} {
		for _, masks := range []int{1, 2, 8} {
			params := DefaultParams()
			params.AuthMode = mode
			params.Masks = masks
			params.AuthInterval = 7
			s, gid := newTestSystem(t, 4, params, uint64(6000+masks))
			r := rng.New(uint64(6100 + masks))
			for i := 0; i < 300; i++ {
				c2c(s, gid, r.Intn(4), r.Intn(4), randomLine(r))
			}
			if s.Detected() {
				t.Errorf("mode %v masks %d: false alarm: %v", mode, masks, s.Stats.Detections)
			}
		}
	}
}
