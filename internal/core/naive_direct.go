package core

import (
	"fmt"

	"senss/internal/crypto"
	"senss/internal/crypto/aes"
	"senss/internal/crypto/cbcmac"
	"senss/internal/crypto/ct"
)

// NaiveChannel models the baseline the paper sets aside in §7.3 ("a
// 'naive' implementation of bus encryption and authentication — direct
// encryption and MAC authentication — is of less interest because of its
// performance penalty") and critiques in §8 (Shi et al.): each bus
// transfer is self-contained — OTP-encrypted under a pad derived from a
// wire-carried sequence number and authenticated by an unchained
// per-message MAC that does not include the originator PID.
//
// Functionally that construction verifies each message in isolation, so:
//   - bit corruption IS detected (the per-message MAC fails);
//   - dropping a message for a subset of processors is NOT detected
//     (remaining messages still verify — the paper's Type 1 argument);
//   - replaying an old message with its valid MAC is NOT detected
//     (the paper's Type 3 argument);
//   - reordering two messages is NOT detected (each carries its own seq).
//
// On the performance side the direct path pays block-cipher latency on
// both ends of every transfer instead of SENSS's one XOR; the machine
// layer charges 2×AESLatency plus a tag slot when this mode is selected.
type NaiveChannel struct {
	cipher crypto.BlockCipher
}

// NaiveMessage is one self-contained wire message.
type NaiveMessage struct {
	Seq    uint64
	Cipher []aes.Block
	Tag    aes.Block
}

// NewNaiveChannel builds the strawman channel over cipher.
func NewNaiveChannel(cipher crypto.BlockCipher) *NaiveChannel {
	return &NaiveChannel{cipher: cipher}
}

// pad derives the OTP material for (seq, block j).
func (c *NaiveChannel) pad(seq uint64, j int) aes.Block {
	return c.cipher.Encrypt(aes.BlockFromUint64(seq, uint64(j)))
}

// Send encrypts plain as message seq and appends the per-message MAC.
func (c *NaiveChannel) Send(seq uint64, plain []aes.Block) NaiveMessage {
	msg := NaiveMessage{Seq: seq, Cipher: make([]aes.Block, len(plain))}
	mac := cbcmac.New(c.cipher, aes.BlockFromUint64(seq, ^uint64(0)))
	for j := range plain {
		msg.Cipher[j] = plain[j].XOR(c.pad(seq, j))
		mac.Update(msg.Cipher[j]) // note: no PID, no chaining across messages
	}
	msg.Tag = mac.Sum()
	return msg
}

// Receive verifies and decrypts a wire message in isolation.
func (c *NaiveChannel) Receive(msg NaiveMessage) ([]aes.Block, error) {
	mac := cbcmac.New(c.cipher, aes.BlockFromUint64(msg.Seq, ^uint64(0)))
	for j := range msg.Cipher {
		mac.Update(msg.Cipher[j])
	}
	sum := mac.Sum()
	if !ct.Equal(sum[:], msg.Tag[:]) {
		return nil, fmt.Errorf("core: naive per-message MAC failed for seq %d", msg.Seq)
	}
	plain := make([]aes.Block, len(msg.Cipher))
	for j := range msg.Cipher {
		plain[j] = msg.Cipher[j].XOR(c.pad(msg.Seq, j))
	}
	return plain, nil
}
