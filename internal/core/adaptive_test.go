package core

import (
	"testing"

	"senss/internal/bus"
	"senss/internal/rng"
	"senss/internal/sim"
)

func adaptiveParams() Params {
	p := DefaultParams()
	p.Adaptive = true
	p.AuthInterval = 8
	p.MinInterval = 2
	p.MaxInterval = 64
	p.AdaptWindow = 8
	p.BusyGapCycles = 100
	p.IdleGapCycles = 1000
	return p
}

// driveAt pushes one clean transfer through the system at the engine's
// current time (the adaptive controller reads the engine clock when no
// proc is supplied).
func driveAt(s *System, gid int, r *rng.Rand, i int) {
	data := randomLine(r)
	t := &bus.Transaction{Kind: bus.Rd, Addr: 0x1000, Src: (i + 1) % 4, GID: gid, Data: data}
	t.SupplierID = i % 4
	s.OnTransaction(nil, t)
}

func TestAdaptiveIntervalGrowsUnderLoad(t *testing.T) {
	params := adaptiveParams()
	params.Perfect = true
	engine := sim.NewEngine()
	s := NewSystem(engine, nil, 4, params, false)
	key, encIV, authIV := testIVs(400)
	table := NewGroupTable()
	gid, _ := table.Allocate(MemberMask(0, 1, 2, 3))
	if err := s.Establish(gid, key, MemberMask(0, 1, 2, 3), encIV, authIV); err != nil {
		t.Fatal(err)
	}
	r := rng.New(401)
	start := s.CurrentInterval(gid)

	// Back-to-back messages (10-cycle gaps ≪ BusyGapCycles): the interval
	// must grow.
	for i := 0; i < 64; i++ {
		i := i
		engine.Schedule(uint64(10*i), func() { driveAt(s, gid, r, i) })
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.CurrentInterval(gid); got <= start {
		t.Errorf("interval %d did not grow from %d under heavy load", got, start)
	}
	if s.Stats.IntervalUps == 0 {
		t.Error("no upward adjustments recorded")
	}
	if s.Detected() {
		t.Errorf("false alarm: %v", s.Stats.Detections)
	}
}

func TestAdaptiveIntervalShrinksWhenIdle(t *testing.T) {
	params := adaptiveParams()
	params.Perfect = true
	params.AuthInterval = 32
	engine := sim.NewEngine()
	s := NewSystem(engine, nil, 4, params, false)
	key, encIV, authIV := testIVs(402)
	table := NewGroupTable()
	gid, _ := table.Allocate(MemberMask(0, 1, 2, 3))
	if err := s.Establish(gid, key, MemberMask(0, 1, 2, 3), encIV, authIV); err != nil {
		t.Fatal(err)
	}
	r := rng.New(403)
	// Sparse messages (5000-cycle gaps ≫ IdleGapCycles): interval shrinks
	// toward the minimum, tightening detection latency for free.
	for i := 0; i < 64; i++ {
		i := i
		engine.Schedule(uint64(5000*i), func() { driveAt(s, gid, r, i) })
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.CurrentInterval(gid); got >= 32 {
		t.Errorf("interval %d did not shrink from 32 when idle", got)
	}
	if s.Stats.IntervalDowns == 0 {
		t.Error("no downward adjustments recorded")
	}
}

func TestAdaptiveRespectsBounds(t *testing.T) {
	params := adaptiveParams()
	params.Perfect = true
	params.MaxInterval = 16
	engine := sim.NewEngine()
	s := NewSystem(engine, nil, 4, params, false)
	key, encIV, authIV := testIVs(404)
	table := NewGroupTable()
	gid, _ := table.Allocate(MemberMask(0, 1, 2, 3))
	if err := s.Establish(gid, key, MemberMask(0, 1, 2, 3), encIV, authIV); err != nil {
		t.Fatal(err)
	}
	r := rng.New(405)
	for i := 0; i < 400; i++ {
		i := i
		engine.Schedule(uint64(5*i), func() { driveAt(s, gid, r, i) })
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.CurrentInterval(gid); got > 16 {
		t.Errorf("interval %d exceeded MaxInterval 16", got)
	}
}

// TestAdaptiveStillDetectsAttacks: widening the interval must not lose the
// detection guarantee — the chain still covers every transfer.
func TestAdaptiveStillDetectsAttacks(t *testing.T) {
	params := adaptiveParams()
	params.Perfect = true
	engine := sim.NewEngine()
	s := NewSystem(engine, nil, 4, params, false)
	key, encIV, authIV := testIVs(406)
	table := NewGroupTable()
	gid, _ := table.Allocate(MemberMask(0, 1, 2, 3))
	if err := s.Establish(gid, key, MemberMask(0, 1, 2, 3), encIV, authIV); err != nil {
		t.Fatal(err)
	}
	s.SetTamperer(&dropTamperer{dropSeq: 20, victims: []int{3}})
	r := rng.New(407)
	for i := 0; i < 200; i++ {
		i := i
		engine.Schedule(uint64(10*i), func() {
			if !s.Detected() {
				driveAt(s, gid, r, i)
			}
		})
	}
	if err := engine.Run(); err != nil {
		t.Fatal(err)
	}
	if !s.Detected() {
		t.Fatal("attack undetected under adaptive intervals")
	}
}
