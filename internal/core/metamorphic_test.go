package core

import (
	"testing"

	"senss/internal/crypto"
	"senss/internal/crypto/aes"
	"senss/internal/rng"
)

// Metamorphic properties of the authentication chain (Eq. 1): starting
// from a real captured wire transcript, ANY single mutation — a dropped
// transfer, an adjacent swap, or a replayed transfer, at EVERY position —
// must change the group MAC an observer accumulates. The companion
// negative test pins the paper's §4.3 argument on the same transcript:
// the masks-as-MAC strawman converges again after a swap, so only the
// separately-IV'd chain catches a Type 2 reorder.

// transcriptMsg is one secured transfer captured off the wire.
type transcriptMsg struct {
	sender int
	cipher []aes.Block
}

// metamorphicParams fixes the shape shared by transcript capture and
// every replay: two mask banks so the bank-cycling lane structure is
// exercised, no timing.
func metamorphicParams(mode AuthMode) Params {
	p := DefaultParams()
	p.AuthMode = mode
	p.Masks = 2
	p.Perfect = true
	return p
}

// metamorphicSeed keys the session material; capture and replay must
// derive identical keys and IVs from it.
func metamorphicSeed(mode AuthMode) uint64 { return 80 + uint64(mode) }

// buildTranscript runs n honest transfers alternating between senders 0
// and 1 of a three-member group and returns the wire stream. Member 2 is
// deliberately NOT instantiated here: variants replay the stream into a
// fresh observer whose chain is a pure function of what it snoops.
func buildTranscript(t *testing.T, mode AuthMode, n int) []transcriptMsg {
	t.Helper()
	params := metamorphicParams(mode)
	key, encIV, authIV := testIVs(metamorphicSeed(mode))
	shus := []*SHU{NewSHU(0, params), NewSHU(1, params)}
	for _, s := range shus {
		if err := s.Join(1, key, MemberMask(0, 1, 2), encIV, authIV); err != nil {
			t.Fatal(err)
		}
	}
	r := rng.New(81)
	msgs := make([]transcriptMsg, 0, n)
	for i := 0; i < n; i++ {
		sender := i % 2
		cipher, err := shus[sender].Encrypt(1, LineToBlocks(randomLine(r)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := shus[1-sender].Observe(1, cipher, sender); err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, transcriptMsg{sender: sender, cipher: cipher})
	}
	return msgs
}

// observerSum replays a (possibly mutated) wire stream into a fresh
// member 2 and returns its final chain value.
func observerSum(t *testing.T, mode AuthMode, msgs []transcriptMsg) aes.Block {
	t.Helper()
	params := metamorphicParams(mode)
	key, encIV, authIV := testIVs(metamorphicSeed(mode))
	obs := NewSHU(2, params)
	if err := obs.Join(1, key, MemberMask(0, 1, 2), encIV, authIV); err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		if _, err := obs.Observe(1, m.cipher, m.sender); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := obs.MACSum(1)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

func swapAt(msgs []transcriptMsg, i int) []transcriptMsg {
	v := append([]transcriptMsg(nil), msgs...)
	v[i], v[i+1] = v[i+1], v[i]
	return v
}

func TestMetamorphicDropChangesMAC(t *testing.T) {
	for _, mode := range []AuthMode{AuthCBC, AuthGF} {
		const n = 10
		msgs := buildTranscript(t, mode, n)
		honest := observerSum(t, mode, msgs)
		for i := 0; i < n; i++ {
			variant := append(append([]transcriptMsg(nil), msgs[:i]...), msgs[i+1:]...)
			if observerSum(t, mode, variant) == honest {
				t.Errorf("mode %v: dropping transfer %d left the group MAC unchanged", mode, i)
			}
		}
	}
}

func TestMetamorphicSwapChangesMAC(t *testing.T) {
	for _, mode := range []AuthMode{AuthCBC, AuthGF} {
		const n = 10
		msgs := buildTranscript(t, mode, n)
		honest := observerSum(t, mode, msgs)
		for i := 0; i+1 < n; i++ {
			if observerSum(t, mode, swapAt(msgs, i)) == honest {
				t.Errorf("mode %v: swapping transfers %d and %d left the group MAC unchanged", mode, i, i+1)
			}
		}
	}
}

func TestMetamorphicReplayChangesMAC(t *testing.T) {
	for _, mode := range []AuthMode{AuthCBC, AuthGF} {
		const n = 10
		msgs := buildTranscript(t, mode, n)
		honest := observerSum(t, mode, msgs)
		for i := 0; i < n; i++ {
			variant := make([]transcriptMsg, 0, n+1)
			variant = append(variant, msgs[:i+1]...)
			variant = append(variant, msgs[i])
			variant = append(variant, msgs[i+1:]...)
			if observerSum(t, mode, variant) == honest {
				t.Errorf("mode %v: replaying transfer %d left the group MAC unchanged", mode, i)
			}
		}
	}
}

// TestMetamorphicNaiveMaskChainMissesReorder pins the paper's §4.3
// negative result against a real transcript: for every adjacent swap
// that leaves at least one common trailing message, the masks-as-MAC
// strawman re-converges to the honest evidence (the attack is invisible
// to a later checkpoint), while the real chained MAC over the same two
// streams stays different. This is exactly why SENSS chains a separate
// MAC under its own IV instead of reusing the encryption masks.
func TestMetamorphicNaiveMaskChainMissesReorder(t *testing.T) {
	const n = 10
	msgs := buildTranscript(t, AuthCBC, n)
	honest := observerSum(t, AuthCBC, msgs)
	key, iv, _ := testIVs(metamorphicSeed(AuthCBC))
	feed := func(m *MaskChainAuth, stream []transcriptMsg) {
		for _, msg := range stream {
			for _, c := range msg.cipher {
				m.ObserveCipher(c)
			}
		}
	}
	for i := 0; i+2 < n; i++ {
		variant := swapAt(msgs, i)
		ref, vic := NewMaskChainAuth(crypto.MustBackend(crypto.Ref, key), iv), NewMaskChainAuth(crypto.MustBackend(crypto.Ref, key), iv)
		feed(ref, msgs)
		feed(vic, variant)
		if ref.Evidence() != vic.Evidence() {
			t.Errorf("strawman kept diverging after swap at %d; its chain should depend only on the last ciphertext", i)
		}
		if observerSum(t, AuthCBC, variant) == honest {
			t.Errorf("real chain missed the swap at %d", i)
		}
	}
}
