package core

import (
	"bytes"
	"testing"

	"senss/internal/bus"
	"senss/internal/crypto"
	"senss/internal/crypto/aes"
	"senss/internal/rng"
)

func testIVs(seed uint64) (key, encIV, authIV aes.Block) {
	r := rng.New(seed)
	return aes.Block(r.Block16()), aes.Block(r.Block16()), aes.Block(r.Block16())
}

// newTestSystem builds an n-processor SENSS layer detached from any engine
// or bus (pure protocol-level testing) with one established group.
func newTestSystem(t *testing.T, n int, params Params, seed uint64) (*System, int) {
	t.Helper()
	params.Perfect = true // no timing in protocol tests
	s := NewSystem(nil, nil, n, params, false)
	key, encIV, authIV := testIVs(seed)
	members := uint32(1<<uint(n)) - 1
	table := NewGroupTable()
	gid, err := table.Allocate(members)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Establish(gid, key, members, encIV, authIV); err != nil {
		t.Fatal(err)
	}
	return s, gid
}

// c2c fabricates a cache-to-cache transfer of line from sender, requested
// by requester, and runs it through the SENSS hook.
func c2c(s *System, gid, sender, requester int, line []byte) *bus.Transaction {
	data := append([]byte(nil), line...)
	t := &bus.Transaction{Kind: bus.Rd, Addr: 0x1000, Src: requester, GID: gid, Data: data}
	t.SupplierID = sender
	s.OnTransaction(nil, t)
	return t
}

func randomLine(r *rng.Rand) []byte {
	line := make([]byte, 64)
	r.Read(line)
	return line
}

func TestJoinRejectsEqualIVs(t *testing.T) {
	shu := NewSHU(0, DefaultParams())
	key, iv, _ := testIVs(1)
	if err := shu.Join(0, key, 1, iv, iv); err == nil {
		t.Error("Join accepted equal encryption and authentication IVs")
	}
}

func TestJoinRejectsNonMember(t *testing.T) {
	shu := NewSHU(3, DefaultParams())
	key, encIV, authIV := testIVs(2)
	if err := shu.Join(0, key, MemberMask(0, 1), encIV, authIV); err == nil {
		t.Error("Join accepted a processor outside the member set")
	}
}

func TestBitMatrixLookup(t *testing.T) {
	shu := NewSHU(1, DefaultParams())
	key, encIV, authIV := testIVs(3)
	if err := shu.Join(7, key, MemberMask(0, 1, 2), encIV, authIV); err != nil {
		t.Fatal(err)
	}
	if !shu.InGroup(7, 0) || !shu.InGroup(7, 1) || !shu.InGroup(7, 2) {
		t.Error("members missing from bit matrix")
	}
	if shu.InGroup(7, 3) {
		t.Error("non-member present in bit matrix")
	}
	if shu.InGroup(8, 1) {
		t.Error("unjoined group row should be all zeroes")
	}
	shu.Leave(7)
	if shu.InGroup(7, 1) {
		t.Error("Leave did not clear the matrix row")
	}
}

func TestCleanTransferRoundTrip(t *testing.T) {
	s, gid := newTestSystem(t, 4, DefaultParams(), 10)
	r := rng.New(11)
	for i := 0; i < 50; i++ {
		line := randomLine(r)
		sender := i % 4
		requester := (i + 1) % 4
		txn := c2c(s, gid, sender, requester, line)
		if !bytes.Equal(txn.Data, line) {
			t.Fatalf("transfer %d: requester decrypted wrong plaintext", i)
		}
	}
	// All four members must agree on the MAC chain.
	ref, _ := s.SHU(0).MACSum(gid)
	for pid := 1; pid < 4; pid++ {
		m, _ := s.SHU(pid).MACSum(gid)
		if m != ref {
			t.Errorf("processor %d MAC diverged on clean traffic", pid)
		}
	}
	s.ForceAuthentication(gid)
	if s.Detected() {
		t.Errorf("false alarm on clean traffic: %v", s.Stats.Detections)
	}
}

func TestSameDataDifferentCiphertext(t *testing.T) {
	s, gid := newTestSystem(t, 2, DefaultParams(), 12)
	line := make([]byte, 64)
	for i := range line {
		line[i] = 0xAB
	}
	// Capture the wire ciphertext via a recording tamperer.
	rec := &recordingTamperer{}
	s.SetTamperer(rec)
	c2c(s, gid, 0, 1, line)
	c2c(s, gid, 0, 1, line)
	if len(rec.ciphers) != 2 {
		t.Fatalf("recorded %d messages", len(rec.ciphers))
	}
	if rec.ciphers[0][0] == rec.ciphers[1][0] {
		t.Error("identical plaintext produced identical ciphertext on consecutive transfers")
	}
	// And the XOR of the two ciphertexts must NOT equal D ⊕ D' = 0.
	if rec.ciphers[0][0].XOR(rec.ciphers[1][0]).IsZero() {
		t.Error("ciphertext XOR leaks plaintext relation (OTP reuse)")
	}
}

// recordingTamperer passively observes ciphertexts (a wiretap adversary).
type recordingTamperer struct {
	ciphers [][]aes.Block
}

func (r *recordingTamperer) Tamper(seq uint64, sender int, cipher []aes.Block) map[int][]Observed {
	cp := make([]aes.Block, len(cipher))
	copy(cp, cipher)
	r.ciphers = append(r.ciphers, cp)
	return nil
}

// dropTamperer drops one message for a subset of receivers (Type 1).
type dropTamperer struct {
	dropSeq uint64
	victims []int
}

func (d *dropTamperer) Tamper(seq uint64, sender int, cipher []aes.Block) map[int][]Observed {
	if seq != d.dropSeq {
		return nil
	}
	m := make(map[int][]Observed)
	for _, v := range d.victims {
		m[v] = nil // observes nothing
	}
	return m
}

func TestType1DroppingDetected(t *testing.T) {
	params := DefaultParams()
	params.AuthInterval = 10
	s, gid := newTestSystem(t, 4, params, 13)
	s.SetTamperer(&dropTamperer{dropSeq: 3, victims: []int{2, 3}})
	r := rng.New(14)
	for i := 0; i < 12 && !s.Detected(); i++ {
		c2c(s, gid, i%2, (i+1)%4, randomLine(r))
	}
	if !s.Detected() {
		t.Fatal("message dropping went undetected through an authentication point")
	}
}

// swapTamperer buffers message n and delivers it after message n+1 to all
// receivers (Type 2 reordering).
type swapTamperer struct {
	swapSeq uint64
	held    *Observed
	procs   int
}

func (w *swapTamperer) Tamper(seq uint64, sender int, cipher []aes.Block) map[int][]Observed {
	cp := make([]aes.Block, len(cipher))
	copy(cp, cipher)
	if seq == w.swapSeq {
		w.held = &Observed{Cipher: cp, Sender: sender}
		m := make(map[int][]Observed)
		for pid := 0; pid < w.procs; pid++ {
			m[pid] = nil // hold: nobody sees it yet
		}
		return m
	}
	if w.held != nil {
		held := *w.held
		w.held = nil
		m := make(map[int][]Observed)
		for pid := 0; pid < w.procs; pid++ {
			m[pid] = []Observed{{Cipher: cp, Sender: sender}, held}
		}
		return m
	}
	return nil
}

func TestType2ReorderingDetected(t *testing.T) {
	params := DefaultParams()
	params.AuthInterval = 10
	s, gid := newTestSystem(t, 4, params, 15)
	s.SetTamperer(&swapTamperer{swapSeq: 2, procs: 4})
	r := rng.New(16)
	for i := 0; i < 12 && !s.Detected(); i++ {
		c2c(s, gid, 0, 1+(i%3), randomLine(r))
	}
	if !s.Detected() {
		t.Fatal("message reordering went undetected")
	}
}

// TestType2NaiveMaskChainRecovers reproduces the paper's §4.3 argument:
// the strawman that uses the encryption masks as integrity evidence
// re-converges after a swap, so a later checkpoint sees nothing.
func TestType2NaiveMaskChainRecovers(t *testing.T) {
	key, iv, _ := testIVs(17)
	r := rng.New(18)
	c1, c2, c3 := aes.Block(r.Block16()), aes.Block(r.Block16()), aes.Block(r.Block16())

	sender := NewMaskChainAuth(crypto.MustBackend(crypto.Ref, key), iv)
	receiver := NewMaskChainAuth(crypto.MustBackend(crypto.Ref, key), iv)

	// Sender-side order: c1 c2 c3. Receiver sees c2 c1 c3 (swap).
	sender.ObserveCipher(c1)
	sender.ObserveCipher(c2)
	receiver.ObserveCipher(c2)
	receiver.ObserveCipher(c1)
	if sender.Evidence() != receiver.Evidence() {
		// Mid-flight the chains differ...
		sender.ObserveCipher(c3)
		receiver.ObserveCipher(c3)
	}
	// ...but after the next common message they are identical again: the
	// strawman has "recovered" and a checkpoint comparison passes.
	if sender.Evidence() != receiver.Evidence() {
		t.Fatal("strawman unexpectedly kept diverging (chain should depend only on last cipher)")
	}

	// The real SENSS MAC chain keeps the divergence (TestType2Reordering
	// above); this test documents why the separate IV'd chain is needed.
}

// spoofTamperer injects a fake message (claimed PID) to a single victim
// between real transfers (Type 3 targeted spoofing).
type spoofTamperer struct {
	atSeq   uint64
	victim  int
	claimed int
	payload []aes.Block
}

func (sp *spoofTamperer) Tamper(seq uint64, sender int, cipher []aes.Block) map[int][]Observed {
	cp := make([]aes.Block, len(cipher))
	copy(cp, cipher)
	if seq != sp.atSeq {
		return nil
	}
	return map[int][]Observed{
		sp.victim: {
			{Cipher: cp, Sender: sender},
			{Cipher: sp.payload, Sender: sp.claimed},
		},
	}
}

func TestType3TargetedSpoofingDetected(t *testing.T) {
	params := DefaultParams()
	params.AuthInterval = 10
	s, gid := newTestSystem(t, 4, params, 19)
	r := rng.New(20)
	fake := LineToBlocks(randomLine(r))
	// Victim is processor 3; the spoof claims to come from processor 2.
	s.SetTamperer(&spoofTamperer{atSeq: 1, victim: 3, claimed: 2, payload: fake})
	for i := 0; i < 12 && !s.Detected(); i++ {
		c2c(s, gid, 0, 1, randomLine(r))
	}
	if !s.Detected() {
		t.Fatal("targeted spoofing went undetected")
	}
}

func TestType3SelfSnoopAlarm(t *testing.T) {
	params := DefaultParams()
	s, gid := newTestSystem(t, 4, params, 21)
	r := rng.New(22)
	fake := LineToBlocks(randomLine(r))
	// The spoof claims PID 3 and reaches processor 3 itself: instant alarm.
	s.SetTamperer(&spoofTamperer{atSeq: 0, victim: 3, claimed: 3, payload: fake})
	c2c(s, gid, 0, 1, randomLine(r))
	if !s.SHU(3).Alarmed(gid) {
		t.Fatal("self-snooped spoof did not raise the immediate alarm")
	}
	if !s.Detected() {
		t.Fatal("system did not record the self-snoop detection")
	}
}

// replayTamperer re-delivers an earlier ciphertext to one victim.
type replayTamperer struct {
	captureSeq, replaySeq uint64
	victim                int
	captured              *Observed
}

func (rp *replayTamperer) Tamper(seq uint64, sender int, cipher []aes.Block) map[int][]Observed {
	cp := make([]aes.Block, len(cipher))
	copy(cp, cipher)
	if seq == rp.captureSeq {
		rp.captured = &Observed{Cipher: cp, Sender: sender}
		return nil
	}
	if seq == rp.replaySeq && rp.captured != nil {
		return map[int][]Observed{
			rp.victim: {{Cipher: cp, Sender: sender}, *rp.captured},
		}
	}
	return nil
}

func TestReplayDetected(t *testing.T) {
	params := DefaultParams()
	params.AuthInterval = 10
	s, gid := newTestSystem(t, 4, params, 23)
	s.SetTamperer(&replayTamperer{captureSeq: 1, replaySeq: 4, victim: 2})
	r := rng.New(24)
	for i := 0; i < 12 && !s.Detected(); i++ {
		c2c(s, gid, 0, 1, randomLine(r))
	}
	if !s.Detected() {
		t.Fatal("replay went undetected")
	}
}

// TestSec31PadReuseLeak reproduces the paper's §3.1 break of the naive
// scheme: two transfers of a line under the same memory pad leak D ⊕ D'.
func TestSec31PadReuseLeak(t *testing.T) {
	key, _, _ := testIVs(25)
	ch := NewPadReuseChannel(crypto.MustBackend(crypto.Ref, key))
	r := rng.New(26)
	d1 := aes.Block(r.Block16())
	d2 := aes.Block(r.Block16())
	const addr, seq = 0xdead00, 7 // line stays dirty: same pad both times
	c1 := ch.Encrypt(addr, seq, d1)
	c2 := ch.Encrypt(addr, seq, d2)
	if got, want := LeakXOR(c1, c2), d1.XOR(d2); got != want {
		t.Fatalf("expected the strawman to leak D1⊕D2: got %s want %s", got, want)
	}
}

func TestAuthenticationIntervalCounts(t *testing.T) {
	params := DefaultParams()
	params.AuthInterval = 5
	s, gid := newTestSystem(t, 2, params, 27)
	r := rng.New(28)
	for i := 0; i < 23; i++ {
		c2c(s, gid, 0, 1, randomLine(r))
	}
	if s.Stats.AuthMsgs != 4 { // after transfers 5, 10, 15, 20
		t.Errorf("AuthMsgs = %d, want 4", s.Stats.AuthMsgs)
	}
	if s.Detected() {
		t.Errorf("clean run raised alarms: %v", s.Stats.Detections)
	}
}

func TestPerMessageAuthentication(t *testing.T) {
	params := DefaultParams()
	params.AuthInterval = 1
	s, gid := newTestSystem(t, 2, params, 29)
	r := rng.New(30)
	for i := 0; i < 10; i++ {
		c2c(s, gid, 0, 1, randomLine(r))
	}
	if s.Stats.AuthMsgs != 10 {
		t.Errorf("AuthMsgs = %d, want 10", s.Stats.AuthMsgs)
	}
}

// TestMACTagTruncation: the paper's Eq. (1) broadcasts an m-bit prefix of
// the chain. Every truncation the hardware might choose must still detect
// a divergence (the prefix of two different chain values differs w.h.p.).
func TestMACTagTruncation(t *testing.T) {
	for _, tagBytes := range []int{4, 8, 12, 16} {
		params := DefaultParams()
		params.AuthInterval = 6
		params.MACTagBytes = tagBytes
		s, gid := newTestSystem(t, 4, params, 600+uint64(tagBytes))
		s.SetTamperer(&dropTamperer{dropSeq: 2, victims: []int{3}})
		r := rng.New(601)
		for i := 0; i < 10 && !s.Detected(); i++ {
			c2c(s, gid, 0, 1, randomLine(r))
		}
		if !s.Detected() {
			t.Errorf("tag of %d bytes missed the attack", tagBytes)
		}
		// And the tag length is honored on the wire.
		tag, err := s.SHU(0).MACTag(gid)
		if err != nil || len(tag) != tagBytes {
			t.Errorf("MACTag length = %d, want %d (%v)", len(tag), tagBytes, err)
		}
	}
}

func TestGroupTableLifecycle(t *testing.T) {
	g := NewGroupTable()
	gid1, err := g.Allocate(MemberMask(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	gid2, err := g.Allocate(MemberMask(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if gid1 == gid2 {
		t.Fatal("duplicate GID")
	}
	if !g.Occupied(gid1) || g.Members(gid2) != MemberMask(2, 3) {
		t.Error("table bookkeeping wrong")
	}
	g.Release(gid1)
	if g.Occupied(gid1) {
		t.Error("released GID still occupied")
	}
	if g.Free() != MaxGroups-1 {
		t.Errorf("Free = %d", g.Free())
	}
}

func TestGroupTableExhaustionQueue(t *testing.T) {
	g := NewGroupTable()
	for i := 0; i < MaxGroups; i++ {
		if _, err := g.Allocate(1); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := g.Allocate(1); err != ErrGroupsExhausted {
		t.Fatalf("want ErrGroupsExhausted, got %v", err)
	}
	_, ch, err := g.AllocateOrWait(MemberMask(5))
	if err != nil || ch == nil {
		t.Fatalf("AllocateOrWait: %v", err)
	}
	g.Release(17)
	select {
	case gid := <-ch:
		if gid != 17 {
			t.Errorf("queued waiter got GID %d, want 17", gid)
		}
		g.SetMembers(gid, MemberMask(5))
		if g.Members(gid) != MemberMask(5) {
			t.Error("SetMembers did not record")
		}
	default:
		t.Fatal("queued waiter never received the reclaimed GID")
	}
}

func TestHWCostMatchesPaperArithmetic(t *testing.T) {
	h := ComputeHWCost(DefaultHWCost())
	if h.MatrixBytes != 640 {
		t.Errorf("matrix = %d bytes, want 640", h.MatrixBytes)
	}
	if h.EntryBits != 1161 {
		t.Errorf("entry = %d bits, want 1161", h.EntryBits)
	}
	if h.TableBytes != 148608 { // the paper's "148.6KB"
		t.Errorf("table = %d bytes, want 148608", h.TableBytes)
	}
	if h.ExtraBusLines != 12 {
		t.Errorf("extra lines = %d, want 12 (2 type + 10 GID)", h.ExtraBusLines)
	}
	if h.BusLineIncreasePct < 3.0 || h.BusLineIncreasePct > 3.3 {
		t.Errorf("bus increase = %.2f%%, want ~3.1%%", h.BusLineIncreasePct)
	}
}

func TestDispatchHandshake(t *testing.T) {
	if testing.Short() {
		t.Skip("RSA keygen in short mode")
	}
	r := rng.New(31)
	keys := make(map[int]*ProcessorKeys)
	dist := NewDistributor(32)
	for pid := 0; pid < 3; pid++ {
		pk, err := GenerateProcessorKeys(r, 512)
		if err != nil {
			t.Fatal(err)
		}
		keys[pid] = pk
		dist.RegisterProcessor(pid, pk.Public)
	}
	image := []byte("SENSS demo program image: banking workload v1")
	members := MemberMask(0, 1, 2)
	pkg, sessionKey, err := dist.Dispatch(image, members)
	if err != nil {
		t.Fatal(err)
	}

	// Every member unwraps the same key and recovers the image.
	for pid := 0; pid < 3; pid++ {
		k, err := pkg.Unwrap(pid, keys[pid])
		if err != nil {
			t.Fatalf("member %d unwrap: %v", pid, err)
		}
		if k != sessionKey {
			t.Fatalf("member %d got a different session key", pid)
		}
		plain := pkg.DecryptImage(k)
		if !bytes.Equal(plain[:len(image)], image) {
			t.Fatalf("member %d decrypted a corrupt image", pid)
		}
	}

	// A non-member has no wrapped key.
	outsider, err := GenerateProcessorKeys(r, 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pkg.Unwrap(9, outsider); err == nil {
		t.Error("non-member unwrapped the session key")
	}

	// A tampered image fails its MAC.
	pkg.Image[3] ^= 0x80
	if _, err := pkg.Unwrap(0, keys[0]); err == nil {
		t.Error("tampered image passed authentication")
	}
	pkg.Image[3] ^= 0x80

	// Full install onto a System.
	s := NewSystem(nil, nil, 3, DefaultParams(), false)
	table := NewGroupTable()
	gid, err := NewDispatcher(33).Install(s, table, pkg, keys)
	if err != nil {
		t.Fatal(err)
	}
	line := randomLine(r)
	txn := c2c(s, gid, 0, 1, line)
	if !bytes.Equal(txn.Data, line) {
		t.Error("post-dispatch transfer failed to round-trip")
	}
}

func TestMaskBankLanesStayConsistent(t *testing.T) {
	// With k banks, messages m and m+k share a lane; all members must stay
	// consistent for every k the paper evaluates.
	for _, k := range []int{1, 2, 4, 8} {
		params := DefaultParams()
		params.Masks = k
		s, gid := newTestSystem(t, 3, params, 40+uint64(k))
		r := rng.New(50 + uint64(k))
		for i := 0; i < 40; i++ {
			line := randomLine(r)
			txn := c2c(s, gid, i%3, (i+1)%3, line)
			if !bytes.Equal(txn.Data, line) {
				t.Fatalf("k=%d transfer %d corrupted", k, i)
			}
		}
		s.ForceAuthentication(gid)
		if s.Detected() {
			t.Errorf("k=%d: false alarm: %v", k, s.Stats.Detections)
		}
	}
}

// TestNonMemberSupplierDetected: a transfer tagged with a group the
// supplier does not belong to (GID confusion / cross-group injection)
// cannot be encrypted under that group's session and raises an alarm.
func TestNonMemberSupplierDetected(t *testing.T) {
	params := DefaultParams()
	params.Perfect = true
	s := NewSystem(nil, nil, 4, params, false)
	key, encIV, authIV := testIVs(70)
	table := NewGroupTable()
	gid, _ := table.Allocate(MemberMask(0, 1))
	if err := s.Establish(gid, key, MemberMask(0, 1), encIV, authIV); err != nil {
		t.Fatal(err)
	}
	r := rng.New(71)
	// Processor 2 (not a member) appears as the supplier of a message
	// tagged with the group's GID.
	c2c(s, gid, 2, 0, randomLine(r))
	if !s.Detected() {
		t.Fatal("cross-group supplier went undetected")
	}
}

// TestUnestablishedGroupTrafficIgnored: traffic tagged with a GID nobody
// established passes through untouched (no session, no alarm, no crash) —
// the machine treats it as untagged.
func TestUnestablishedGroupTrafficIgnored(t *testing.T) {
	params := DefaultParams()
	s := NewSystem(nil, nil, 2, params, false)
	r := rng.New(72)
	line := randomLine(r)
	txn := c2c(s, 999, 0, 1, line)
	if s.Detected() {
		t.Fatal("untagged traffic raised an alarm")
	}
	if !bytes.Equal(txn.Data, line) {
		t.Fatal("untagged traffic was transformed")
	}
}

func TestTwoGroupsAreIsolated(t *testing.T) {
	params := DefaultParams()
	params.Perfect = true
	s := NewSystem(nil, nil, 4, params, false)
	k1, e1, a1 := testIVs(60)
	k2, e2, a2 := testIVs(61)
	table := NewGroupTable()
	g1, _ := table.Allocate(MemberMask(0, 1))
	g2, _ := table.Allocate(MemberMask(2, 3))
	if err := s.Establish(g1, k1, MemberMask(0, 1), e1, a1); err != nil {
		t.Fatal(err)
	}
	if err := s.Establish(g2, k2, MemberMask(2, 3), e2, a2); err != nil {
		t.Fatal(err)
	}
	r := rng.New(62)
	l1, l2 := randomLine(r), randomLine(r)
	t1 := c2c(s, g1, 0, 1, l1)
	t2 := c2c(s, g2, 2, 3, l2)
	if !bytes.Equal(t1.Data, l1) || !bytes.Equal(t2.Data, l2) {
		t.Fatal("interleaved groups corrupted each other's transfers")
	}
	// Non-members know nothing about the other group.
	if s.SHU(0).InGroup(g2, 0) || s.SHU(2).InGroup(g1, 2) {
		t.Error("bit matrix leaked cross-group membership")
	}
	s.ForceAuthentication(g1)
	s.ForceAuthentication(g2)
	if s.Detected() {
		t.Errorf("false alarms: %v", s.Stats.Detections)
	}
}
