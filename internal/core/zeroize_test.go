package core

import (
	"testing"

	"senss/internal/crypto"
	"senss/internal/crypto/aes"
)

// zeroizeHarness joins PID 0 and PID 1 into group 0, exchanges one line so
// every chain component has advanced past its initial state, and returns
// the live session pieces of PID 0 so a test can assert on them after the
// session object itself becomes unreachable.
func zeroizeHarness(t *testing.T, mode AuthMode) (*SHU, *session) {
	t.Helper()
	params := DefaultParams()
	params.AuthMode = mode
	shu := NewSHU(0, params)
	peer := NewSHU(1, params)
	key := aes.Block{0xaa, 1, 2, 3}
	encIV := aes.Block{4, 5, 6}
	authIV := aes.Block{7, 8, 9}
	for _, s := range []*SHU{shu, peer} {
		if err := s.Join(0, key, MemberMask(0, 1), encIV, authIV); err != nil {
			t.Fatal(err)
		}
	}
	line := make([]aes.Block, BlocksPerLine)
	for i := range line {
		line[i] = aes.BlockFromUint64(uint64(i), 0xdead)
	}
	ct, err := shu.Encrypt(0, line)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := peer.Observe(0, ct, 0); err != nil {
		t.Fatal(err)
	}
	ss := shu.sessions[0]
	if ss == nil || ss.seq == 0 {
		t.Fatal("session did not advance; harness is vacuous")
	}
	return shu, ss
}

// assertSessionWiped checks every secret the session held reads back as
// zero: mask banks, counter base, both chain states, and the expanded key
// schedule of the cipher it owned. before is the cipher's output for
// zeroizeProbe captured while the session key was still installed; any
// backend that still produces it after zeroization kept the key.
func assertSessionWiped(t *testing.T, ss *session, banks [][]aes.Block, cipher crypto.BlockCipher, before aes.Block) {
	t.Helper()
	for i, bank := range banks {
		for j, b := range bank {
			if !b.IsZero() {
				t.Errorf("bank[%d][%d] = %v survived", i, j, b)
			}
		}
	}
	if !ss.ctrBase.IsZero() || ss.ctr != 0 || ss.seq != 0 {
		t.Errorf("counter state survived: ctrBase=%v ctr=%d seq=%d", ss.ctrBase, ss.ctr, ss.seq)
	}
	if sum := ss.mac.Sum(); !sum.IsZero() || ss.mac.Blocks() != 0 {
		t.Errorf("MAC chain survived: sum=%v blocks=%d", sum, ss.mac.Blocks())
	}
	if ss.ghash != nil {
		if ss.ghash.Subkey() != ([16]byte{}) || ss.ghash.Sum() != ([16]byte{}) {
			t.Error("GHASH state survived")
		}
	}
	if ss.cipher != nil {
		t.Error("cipher reference survived")
	}
	// Behavioral erasure check, backend-independent: the zeroized cipher
	// must no longer compute AES under the session key.
	if cipher.Encrypt(zeroizeProbe) == before {
		t.Error("key schedule survived zeroization")
	}
}

// zeroizeProbe is the plaintext block assertSessionWiped encrypts before
// and after zeroization.
var zeroizeProbe = aes.Block{0x42}

// TestLeaveZeroizesSession: Leave must wipe the group's key-derived
// material in both authentication modes, not merely unlink the map entry.
func TestLeaveZeroizesSession(t *testing.T) {
	for _, mode := range []AuthMode{AuthCBC, AuthGF} {
		t.Run(mode.String(), func(t *testing.T) {
			shu, ss := zeroizeHarness(t, mode)
			banks, cipher := ss.banks, ss.cipher
			before := cipher.Encrypt(zeroizeProbe)
			if banks[0][0].IsZero() {
				t.Fatal("mask bank starts zero; test is vacuous")
			}
			shu.Leave(0)
			if shu.sessions[0] != nil || shu.Members(0) != 0 {
				t.Fatal("Leave did not clear the session entry")
			}
			assertSessionWiped(t, ss, banks, cipher, before)
		})
	}
}

// TestSuspendZeroizesSession: after Suspend the encrypted blob must be the
// sole carrier of the chain state — the on-chip copy is wiped (membership
// stays, so the SHU keeps filtering bus traffic for the group).
func TestSuspendZeroizesSession(t *testing.T) {
	for _, mode := range []AuthMode{AuthCBC, AuthGF} {
		t.Run(mode.String(), func(t *testing.T) {
			shu, ss := zeroizeHarness(t, mode)
			banks, cipher := ss.banks, ss.cipher
			before := cipher.Encrypt(zeroizeProbe)
			if _, err := shu.Suspend(0, 42); err != nil {
				t.Fatal(err)
			}
			if shu.sessions[0] != nil {
				t.Fatal("Suspend did not remove the session entry")
			}
			if shu.Members(0) == 0 {
				t.Fatal("Suspend must preserve group membership")
			}
			assertSessionWiped(t, ss, banks, cipher, before)
		})
	}
}
