package core

import (
	"bytes"
	"testing"

	"senss/internal/rng"
)

// suspendAll swaps out every member's context for gid.
func suspendAll(t *testing.T, s *System, gid int, seed uint64) []*SavedContext {
	t.Helper()
	var out []*SavedContext
	for pid := 0; pid < 4; pid++ {
		saved, err := s.SHU(pid).Suspend(gid, seed)
		if err != nil {
			t.Fatalf("suspend %d: %v", pid, err)
		}
		out = append(out, saved)
	}
	return out
}

func TestSuspendResumeContinuesChains(t *testing.T) {
	for _, mode := range []AuthMode{AuthCBC, AuthGF} {
		params := DefaultParams()
		params.AuthMode = mode
		params.AuthInterval = 10
		s, gid := newTestSystem(t, 4, params, 300+uint64(mode))
		r := rng.New(301)

		// Some traffic, then swap everyone out and back in.
		for i := 0; i < 17; i++ {
			c2c(s, gid, i%4, (i+1)%4, randomLine(r))
		}
		contexts := suspendAll(t, s, gid, 42)

		// While suspended, the SHUs hold no chain state for the group.
		if _, err := s.SHU(0).Encrypt(gid, LineToBlocks(randomLine(r))); err == nil {
			t.Fatal("suspended SHU still encrypts")
		}

		for pid, ctx := range contexts {
			if err := s.SHU(pid).Resume(ctx, keyFor(t, s, gid, 300+uint64(mode))); err != nil {
				t.Fatalf("mode %v resume %d: %v", mode, pid, err)
			}
		}

		// Traffic continues seamlessly: round-trips and auth both pass.
		for i := 0; i < 23; i++ {
			line := randomLine(r)
			txn := c2c(s, gid, i%4, (i+2)%4, line)
			if !bytes.Equal(txn.Data, line) {
				t.Fatalf("mode %v: post-resume transfer %d corrupted", mode, i)
			}
		}
		s.ForceAuthentication(gid)
		if s.Detected() {
			t.Fatalf("mode %v: false alarm after swap: %v", mode, s.Stats.Detections)
		}
	}
}

// keyFor rebuilds the session key the same way newTestSystem derived it.
func keyFor(t *testing.T, s *System, gid int, seed uint64) [16]byte {
	t.Helper()
	key, _, _ := testIVs(seed)
	return key
}

func TestResumeRejectsTamperedContext(t *testing.T) {
	params := DefaultParams()
	s, gid := newTestSystem(t, 4, params, 310)
	r := rng.New(311)
	for i := 0; i < 5; i++ {
		c2c(s, gid, i%4, (i+1)%4, randomLine(r))
	}
	saved, err := s.SHU(2).Suspend(gid, 7)
	if err != nil {
		t.Fatal(err)
	}
	saved.Ciphertext[8] ^= 0x01 // the OS (or an attacker) flips one bit
	if err := s.SHU(2).Resume(saved, keyFor(t, s, gid, 310)); err == nil {
		t.Fatal("tampered context accepted")
	}
}

func TestResumeRejectsWrongProcessor(t *testing.T) {
	params := DefaultParams()
	s, gid := newTestSystem(t, 4, params, 312)
	saved, err := s.SHU(1).Suspend(gid, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SHU(3).Resume(saved, keyFor(t, s, gid, 312)); err == nil {
		t.Fatal("context resumed on the wrong processor")
	}
}

func TestResumeRejectsWrongKey(t *testing.T) {
	params := DefaultParams()
	s, gid := newTestSystem(t, 4, params, 313)
	saved, err := s.SHU(1).Suspend(gid, 7)
	if err != nil {
		t.Fatal(err)
	}
	wrong, _, _ := testIVs(999)
	if err := s.SHU(1).Resume(saved, wrong); err == nil {
		t.Fatal("context resumed under the wrong session key")
	}
}

func TestSuspendedContextIsOpaque(t *testing.T) {
	// The serialized plaintext must not appear in the blob: check that the
	// current mask material (which we can compute via a fresh parallel
	// session) is not visible in the ciphertext.
	params := DefaultParams()
	s, gid := newTestSystem(t, 4, params, 314)
	r := rng.New(315)
	for i := 0; i < 3; i++ {
		c2c(s, gid, i%4, (i+1)%4, randomLine(r))
	}
	saved, err := s.SHU(0).Suspend(gid, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Sequence numbers (small integers) would appear as predictable
	// big-endian words in a plaintext dump; scan for the seq value 3.
	var needle [8]byte
	needle[7] = 3
	if bytes.Contains(saved.Ciphertext, needle[:]) {
		// One-in-2^64 false positive per offset; with a short blob this
		// indicates plaintext leakage.
		t.Error("suspended context appears to contain plaintext state")
	}
	if err := s.SHU(0).Resume(saved, keyFor(t, s, gid, 314)); err != nil {
		t.Fatal(err)
	}
}

func TestSuspendWithoutSessionFails(t *testing.T) {
	shu := NewSHU(0, DefaultParams())
	if _, err := shu.Suspend(5, 1); err == nil {
		t.Error("suspend of non-existent session succeeded")
	}
}
