package core

import "fmt"

// Hardware-overhead model of paper §7.1: sizes of the two SHU tables and
// the extra bus lines. cmd/senss-hwcost prints it and a unit test pins the
// arithmetic to the paper's reported numbers.

// HWCostParams are the §7.1 configuration knobs.
type HWCostParams struct {
	MaxGroups    int // group info table entries (1024)
	MaxProcs     int // processors (32)
	KeyBits      int // session key (128)
	CounterBits  int // authentication interval counter (8 chosen)
	OccupiedBits int // occupied flag (1)
	MaskCount    int // masks stored per group (8)
	MaskBits     int // bits per mask (128)
	BaseBusLines int // Gigaplane: 378
	MsgTypeLines int // new message-type lines (2)
	GIDLines     int // GID lines (10)
}

// DefaultHWCost returns the paper's §7.1 parameters.
func DefaultHWCost() HWCostParams {
	return HWCostParams{
		MaxGroups:    1024,
		MaxProcs:     32,
		KeyBits:      128,
		CounterBits:  8,
		OccupiedBits: 1,
		MaskCount:    8,
		MaskBits:     128,
		BaseBusLines: 378,
		MsgTypeLines: 2,
		GIDLines:     10,
	}
}

// HWCost is the computed overhead report.
type HWCost struct {
	MatrixBytes        int     // group-processor bit matrix
	EntryBits          int     // one group info table entry
	TableBytes         int     // whole group info table
	ExtraBusLines      int     // added bus lines
	BusLineIncreasePct float64 // relative to the base bus
}

// ComputeHWCost evaluates the §7.1 arithmetic.
func ComputeHWCost(p HWCostParams) HWCost {
	// The paper sizes the matrix as entries × log2(MaxProcs) bits
	// ("1024 entries × 5 bits per entry = 640 bytes").
	bitsPerEntry := 0
	for 1<<bitsPerEntry < p.MaxProcs {
		bitsPerEntry++
	}
	matrixBits := p.MaxGroups * bitsPerEntry

	entryBits := p.OccupiedBits + p.KeyBits + p.CounterBits + p.MaskCount*p.MaskBits
	extra := p.MsgTypeLines + p.GIDLines
	return HWCost{
		MatrixBytes:        matrixBits / 8,
		EntryBits:          entryBits,
		TableBytes:         p.MaxGroups * entryBits / 8,
		ExtraBusLines:      extra,
		BusLineIncreasePct: float64(extra) / float64(p.BaseBusLines) * 100,
	}
}

// String renders the report in the paper's terms.
func (h HWCost) String() string {
	return fmt.Sprintf(
		"group-processor bit matrix: %d bytes\n"+
			"group info table entry:     %d bits\n"+
			"group info table:           %.1f KB (%d bytes)\n"+
			"extra bus lines:            %d (+%.1f%% over the base bus)\n"+
			"(the paper reports 640 B, 1161 bits, 148.6 KB, and ~3.1%%)",
		h.MatrixBytes, h.EntryBits, float64(h.TableBytes)/1000, h.TableBytes,
		h.ExtraBusLines, h.BusLineIncreasePct)
}
