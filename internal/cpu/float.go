package cpu

import "math"

// float64bits and float64frombits isolate the IEEE-754 conversion used by
// the floating-point workloads (fft, lu, ocean, barnes) when they move
// values through the simulated 64-bit memory words.
func float64bits(f float64) uint64     { return math.Float64bits(f) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
