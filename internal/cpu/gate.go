package cpu

import "senss/internal/sim"

// Gate pauses simulated programs at operation boundaries — the mechanism
// the time-sharing scheduler uses to quiesce a group before swapping its
// SHU contexts out (paper §4.2: "all processes on all processors are
// stopped and the contexts are encrypted before being written out").
//
// A program whose Port carries a Gate checks it before every memory
// operation; while the gate is closed the program parks. The scheduler
// closes the gate and waits for every still-running program to park.
type Gate struct {
	closed  bool
	parked  int
	waiters sim.Queue // parked programs
	quiesce sim.Queue // scheduler waiting for full quiescence
}

// Close makes programs park at their next operation boundary.
func (g *Gate) Close() { g.closed = true }

// Open releases every parked program.
func (g *Gate) Open(e *sim.Engine) {
	g.closed = false
	g.parked = 0
	g.waiters.WakeAll(e)
}

// Closed reports the gate state.
func (g *Gate) Closed() bool { return g.closed }

// Parked returns how many programs are currently parked.
func (g *Gate) Parked() int { return g.parked }

// NoteExit tells quiesce waiters that a program finished (and therefore
// will never park). The machine's program wrapper calls it.
func (g *Gate) NoteExit(e *sim.Engine) { g.quiesce.WakeAll(e) }

// check parks the calling program while the gate is closed. Port calls it
// before each operation.
func (g *Gate) check(p *sim.Proc) {
	for g.closed {
		g.parked++
		g.quiesce.WakeAll(p.Engine())
		g.waiters.Wait(p)
	}
}

// WaitQuiesce blocks the scheduler until want() programs are parked
// behind the closed gate. want is re-evaluated after every wakeup so
// programs that finish (instead of parking) are accounted for.
func (g *Gate) WaitQuiesce(p *sim.Proc, want func() int) {
	for g.closed && g.parked < want() {
		g.quiesce.Wait(p)
	}
}
