package cpu

import (
	"testing"

	"senss/internal/bus"
	"senss/internal/coherence"
	"senss/internal/mem"
	"senss/internal/sim"
)

func newRig() (*sim.Engine, *mem.Store, *coherence.Node) {
	e := sim.NewEngine()
	store := mem.New()
	b := bus.New(e, bus.Timing{
		BusCycle: 10, C2CLat: 120, MemLat: 180, BytesPerBusCycle: 32, LineBytes: 64,
	}, &bus.SimpleMemory{Backing: store})
	n := coherence.NewNode(0, coherence.Params{
		L1Size: 1 << 10, L1Ways: 2, L1Line: 32,
		L2Size: 16 << 10, L2Ways: 4, L2Line: 64,
		L1HitLat: 2, L2HitLat: 10, StoreLat: 2, RMWLat: 4,
	}, b)
	return e, store, n
}

// runProgram executes one program on the rig and returns total cycles.
func runProgram(t *testing.T, params Params, prog Program) (uint64, *Port) {
	t.Helper()
	e, _, n := newRig()
	var port *Port
	e.Spawn("cpu0", func(p *sim.Proc) {
		port = NewPort(p, n, params)
		prog(port)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e.Now(), port
}

func TestOpsCounted(t *testing.T) {
	_, port := runProgram(t, Params{}, func(c *Port) {
		c.Store(0x100, 1)
		c.Load(0x100)
		c.RMW(0x100, func(v uint64) uint64 { return v + 1 })
	})
	if port.Ops != 3 {
		t.Errorf("Ops = %d, want 3", port.Ops)
	}
}

func TestLoadStoreThroughHierarchy(t *testing.T) {
	_, _ = runProgram(t, Params{}, func(c *Port) {
		c.Store(0x200, 77)
		if v := c.Load(0x200); v != 77 {
			t.Errorf("Load = %d", v)
		}
	})
}

func TestAddAndCAS(t *testing.T) {
	runProgram(t, Params{}, func(c *Port) {
		c.Store(0x300, 10)
		if old := c.Add(0x300, 5); old != 10 {
			t.Errorf("Add returned %d, want old value 10", old)
		}
		if v := c.Load(0x300); v != 15 {
			t.Errorf("after Add = %d", v)
		}
		if !c.CAS(0x300, 15, 20) {
			t.Error("CAS with matching old failed")
		}
		if c.CAS(0x300, 15, 99) {
			t.Error("CAS with stale old succeeded")
		}
		if v := c.Load(0x300); v != 20 {
			t.Errorf("after CAS = %d", v)
		}
	})
}

func TestFloatRoundTrip(t *testing.T) {
	runProgram(t, Params{}, func(c *Port) {
		c.StoreFloat(0x400, 3.14159)
		if v := c.LoadFloat(0x400); v != 3.14159 {
			t.Errorf("LoadFloat = %v", v)
		}
	})
}

func TestThinkAdvancesTime(t *testing.T) {
	cycles, _ := runProgram(t, Params{}, func(c *Port) {
		c.Think(1234)
	})
	if cycles != 1234 {
		t.Errorf("Think(1234) advanced %d cycles", cycles)
	}
}

func TestOpGapCharged(t *testing.T) {
	noGap, _ := runProgram(t, Params{}, func(c *Port) {
		for i := 0; i < 10; i++ {
			c.Load(0x500)
		}
	})
	withGap, _ := runProgram(t, Params{OpGap: 7}, func(c *Port) {
		for i := 0; i < 10; i++ {
			c.Load(0x500)
		}
	})
	if withGap != noGap+70 {
		t.Errorf("gap charge: %d vs %d (+%d), want +70", withGap, noGap, withGap-noGap)
	}
}

func TestIFetchModelTouchesICache(t *testing.T) {
	e, _, n := newRig()
	e.Spawn("cpu0", func(p *sim.Proc) {
		c := NewPort(p, n, Params{CodeBase: 0x8000, CodeBytes: 256, IFetchBytes: 4})
		for i := 0; i < 200; i++ { // cycles through the 256-byte text region
			c.Load(0x600)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats.IFetches == 0 {
		t.Error("instruction-fetch model never fetched")
	}
	if n.L1I.Hits == 0 {
		t.Error("looping code never hit the I-cache")
	}
}

func TestPIDAndNow(t *testing.T) {
	runProgram(t, Params{}, func(c *Port) {
		if c.PID() != 0 {
			t.Errorf("PID = %d", c.PID())
		}
		before := c.Now()
		c.Think(10)
		if c.Now() != before+10 {
			t.Error("Now did not advance")
		}
	})
}
