package cpu

import (
	"testing"

	"senss/internal/sim"
)

func TestGateOpenPassThrough(t *testing.T) {
	e := sim.NewEngine()
	g := &Gate{}
	steps := 0
	e.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			g.check(p)
			steps++
			p.Sleep(1)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if steps != 5 {
		t.Errorf("steps = %d", steps)
	}
	if g.Closed() || g.Parked() != 0 {
		t.Error("open gate shows closed/parked state")
	}
}

func TestGateParksAndReleases(t *testing.T) {
	e := sim.NewEngine()
	g := &Gate{}
	g.Close()
	progress := 0
	for i := 0; i < 3; i++ {
		e.Spawn("p", func(p *sim.Proc) {
			g.check(p)
			progress++
		})
	}
	var openedAt uint64
	e.Schedule(500, func() {
		if g.Parked() != 3 {
			t.Errorf("parked = %d at open time", g.Parked())
		}
		openedAt = e.Now()
		g.Open(e)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if progress != 3 {
		t.Errorf("progress = %d after open", progress)
	}
	if openedAt != 500 {
		t.Errorf("opened at %d", openedAt)
	}
}

func TestGateWaitQuiesce(t *testing.T) {
	e := sim.NewEngine()
	g := &Gate{}
	running := 2
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("worker", func(p *sim.Proc) {
			p.Sleep(uint64(100 * (i + 1)))
			g.check(p) // parks (gate closed by scheduler below)
		})
	}
	var quiescedAt uint64
	e.Spawn("sched", func(p *sim.Proc) {
		p.Sleep(10)
		g.Close()
		g.WaitQuiesce(p, func() int { return running })
		quiescedAt = p.Now()
		g.Open(e)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if quiescedAt != 200 { // the slower worker parks at t=200
		t.Errorf("quiesced at %d, want 200", quiescedAt)
	}
}

func TestGateNoteExitUnblocksScheduler(t *testing.T) {
	e := sim.NewEngine()
	g := &Gate{}
	running := 1
	e.Spawn("worker", func(p *sim.Proc) {
		p.Sleep(50)
		// Finishes without ever parking.
		running--
		g.NoteExit(e)
	})
	done := false
	e.Spawn("sched", func(p *sim.Proc) {
		g.Close()
		g.WaitQuiesce(p, func() int { return running })
		done = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("scheduler never unblocked after the worker exited")
	}
}
