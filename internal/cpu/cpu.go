// Package cpu models the in-order processor that executes a simulated
// program against a coherence node.
//
// A Program is plain Go code run inside a sim.Proc; every memory operation
// blocks for its simulated latency, and a configurable CPI charge plus an
// instruction-fetch model account for the non-memory work between
// operations.
package cpu

import (
	"senss/internal/coherence"
	"senss/internal/sim"
)

// Program is the code a simulated processor runs. It must perform all
// shared-memory access through the Port.
type Program func(c *Port)

// Params configures the execution model.
type Params struct {
	// OpGap is the compute charge (cycles) between consecutive memory
	// operations — a crude CPI model for the non-memory instructions.
	OpGap uint64
	// CodeBase and CodeBytes describe the program text region used by the
	// instruction-fetch model. Text is shared (read-only) across all
	// processors of a group, as for a real parallel program.
	CodeBase  uint64
	CodeBytes uint64
	// IFetchBytes is how many code bytes each memory operation "consumes";
	// an L1I probe happens whenever the stream crosses a line. Zero
	// disables instruction-fetch modeling.
	IFetchBytes uint64

	// Gate, when set, is checked before every operation: the program
	// parks while the gate is closed (time-sharing preemption, §4.2).
	Gate *Gate
}

// Port is the processor-side memory interface handed to a Program.
type Port struct {
	proc   *sim.Proc
	node   *coherence.Node
	params Params

	pc   uint64 // byte position in the text region
	Ops  uint64 // memory operations performed
	Done bool   // set once the program returns
}

// NewPort binds a proc to a node. Exposed for the machine package and
// white-box tests.
func NewPort(proc *sim.Proc, node *coherence.Node, params Params) *Port {
	return &Port{proc: proc, node: node, params: params}
}

// Proc exposes the underlying sim proc (for Think-style extensions).
func (c *Port) Proc() *sim.Proc { return c.proc }

// PID returns the processor ID.
func (c *Port) PID() int { return c.node.ID }

// Now returns the current simulated cycle.
func (c *Port) Now() uint64 { return c.proc.Now() }

// step charges the per-op compute gap and the instruction-fetch model.
func (c *Port) step() {
	if c.params.Gate != nil {
		c.params.Gate.check(c.proc)
	}
	c.Ops++
	if c.params.OpGap > 0 {
		c.proc.Sleep(c.params.OpGap)
	}
	if c.params.IFetchBytes > 0 && c.params.CodeBytes > 0 {
		line := uint64(c.node.Params.L1Line)
		before := c.pc / line
		c.pc = (c.pc + c.params.IFetchBytes) % c.params.CodeBytes
		if c.pc/line != before {
			c.node.IFetch(c.proc, c.params.CodeBase+(c.pc/line)*line)
		}
	}
}

// Load reads the aligned 8-byte word at addr.
func (c *Port) Load(addr uint64) uint64 {
	c.step()
	return c.node.Load(c.proc, addr)
}

// Store writes the aligned 8-byte word at addr.
func (c *Port) Store(addr uint64, val uint64) {
	c.step()
	c.node.Store(c.proc, addr, val)
}

// RMW atomically applies f to the word at addr and returns the old value.
func (c *Port) RMW(addr uint64, f func(uint64) uint64) uint64 {
	c.step()
	return c.node.RMW(c.proc, addr, f)
}

// Add atomically adds delta to the word at addr, returning the old value.
func (c *Port) Add(addr uint64, delta uint64) uint64 {
	return c.RMW(addr, func(v uint64) uint64 { return v + delta })
}

// CAS atomically replaces old with new at addr if it matches, reporting
// success.
func (c *Port) CAS(addr uint64, old, new uint64) bool {
	swapped := false
	c.RMW(addr, func(v uint64) uint64 {
		if v == old {
			swapped = true
			return new
		}
		return v
	})
	return swapped
}

// Think charges n cycles of pure computation.
func (c *Port) Think(n uint64) {
	if n > 0 {
		c.proc.Sleep(n)
	}
}

// LoadFloat reads a float64 stored with StoreFloat.
func (c *Port) LoadFloat(addr uint64) float64 {
	return float64frombits(c.Load(addr))
}

// StoreFloat writes a float64 as its IEEE-754 bits.
func (c *Port) StoreFloat(addr uint64, v float64) {
	c.Store(addr, float64bits(v))
}
