package oracle

import (
	"senss/internal/core"
	"senss/internal/crypto"
	"senss/internal/crypto/aes"
	"senss/internal/crypto/ct"
	"senss/internal/crypto/gf128"
)

// groupRef is the untimed crypto reference for one group: a straight-line
// recomputation of the SENSS pad schedule and transcript MAC from the
// session parameters alone. It is deliberately independent of the SHU
// implementation — a single "sender truth" per group that every honest
// member must equal, which is what lets it catch faults the members'
// mutual agreement can never see (all members reusing a stale pad still
// agree with each other, but not with the schedule).
type groupRef struct {
	// cipher is always the "ref" backend regardless of the system under
	// test's Params.Backend: the oracle recomputes the schedule from an
	// independent implementation, so a run under -crypto stdlib gets a
	// free lockstep cross-check against the reference AES.
	cipher crypto.BlockCipher
	gf     bool
	//senss-lint:secret
	banks [][]aes.Block
	seq   uint64
	//senss-lint:secret
	chain aes.Block // Eq. 1 transcript CBC-MAC state (AuthCBC)
	ghash *gf128.GHASH
	//senss-lint:secret
	ctrBase  aes.Block
	ctr      uint64
	tagBytes int
}

// OnEstablish implements core.Observer: derive the reference pad schedule
// and chain state exactly as the spec (paper §4.3, Table 1) prescribes.
func (c *Checker) OnEstablish(gid int, key aes.Block, members uint32, encIV, authIV aes.Block) {
	p := c.opt.Senss
	k := p.Masks
	if k <= 0 {
		k = 1
	}
	tb := p.MACTagBytes
	if tb <= 0 || tb > aes.BlockSize {
		tb = aes.BlockSize
	}
	ref := &groupRef{
		cipher:   crypto.MustBackend(crypto.Ref, key),
		gf:       p.AuthMode == core.AuthGF,
		tagBytes: tb,
	}
	ref.banks = make([][]aes.Block, k)
	if ref.gf {
		ref.ctrBase = encIV
		for i := range ref.banks {
			ref.banks[i] = make([]aes.Block, core.BlocksPerLine)
			for j := range ref.banks[i] {
				ref.banks[i][j] = ref.cipher.Encrypt(ref.ctrBase.XOR(aes.BlockFromUint64(0, ref.ctr)))
				ref.ctr++
			}
		}
		h := ref.cipher.Encrypt(authIV)
		ref.ghash = gf128.NewGHASH([16]byte(h))
	} else {
		for i := range ref.banks {
			ref.banks[i] = make([]aes.Block, core.BlocksPerLine)
			for j := range ref.banks[i] {
				ref.banks[i][j] = ref.cipher.Encrypt(encIV.XOR(aes.BlockFromUint64(uint64(i), uint64(j))))
			}
		}
		ref.chain = authIV
	}
	c.groups[gid] = ref
	// Log the establishment redacted-at-source: fingerprints only, so no
	// later report path can leak what was never stored.
	c.sessions = append(c.sessions, SessionFP{
		GID:      gid,
		KeyFP:    ct.Fingerprint(key[:]),
		Members:  members,
		EncIVFP:  ct.Fingerprint(encIV[:]),
		AuthIVFP: ct.Fingerprint(authIV[:]),
	})
}

// pidInput is the (plaintext ⊕ originator-PID) block of Eq. 1 / Figure 2.
func pidInput(plain aes.Block, sender, j int) aes.Block {
	return plain.XOR(aes.BlockFromUint64(uint64(sender), uint64(j)))
}

// OnTransfer implements core.Observer: check the on-the-wire ciphertext
// against the reference one-time-pad schedule, advance the reference
// chains, and stash the plaintext for the bus-level payload check.
func (c *Checker) OnTransfer(gid, sender int, seq uint64, plain, wire []aes.Block) {
	if c.report != nil {
		return
	}
	ref := c.groups[gid]
	if ref == nil {
		c.fail("group %d transfer before any establishment the oracle observed", gid)
		return
	}
	if seq != ref.seq {
		c.fail("group %d transfer sequence diverges: simulator at %d, reference at %d",
			gid, seq, ref.seq)
		return
	}
	bank := ref.banks[seq%uint64(len(ref.banks))]
	for j := range wire {
		if wire[j] != plain[j].XOR(bank[j]) {
			c.fail("group %d transfer %d from processor %d: ciphertext block %d diverges from the reference one-time-pad schedule",
				gid, seq, sender, j)
			return
		}
	}
	// Advance the reference exactly as every honest member does (Table 1):
	// fold (plain ⊕ PID) into the transcript chain and refresh the bank.
	for j := range wire {
		in := pidInput(plain[j], sender, j)
		if ref.gf {
			ref.ghash.Update([16]byte(in))
			bank[j] = ref.cipher.Encrypt(ref.ctrBase.XOR(aes.BlockFromUint64(0, ref.ctr)))
			ref.ctr++
		} else {
			ref.chain = ref.cipher.Encrypt(ref.chain.XOR(in))
			bank[j] = ref.cipher.Encrypt(wire[j].XOR(aes.BlockFromUint64(uint64(sender), uint64(j))))
		}
	}
	ref.seq++
	c.pendingGID = gid
	c.pendingPlain = c.pendingPlain[:0]
	for _, b := range plain {
		c.pendingPlain = append(c.pendingPlain, [16]byte(b))
	}
	c.pendingSet = true
}

// OnAuth implements core.Observer: the initiator's broadcast tag must be a
// prefix of the reference transcript MAC. Suppressed once the system has
// raised its own alarm — a genuine detection already explains the skew.
func (c *Checker) OnAuth(gid, initiator int, tag []byte) {
	if c.report != nil || c.alarmRaised() {
		return
	}
	ref := c.groups[gid]
	if ref == nil {
		c.fail("group %d authentication before any establishment the oracle observed", gid)
		return
	}
	var sum aes.Block
	if ref.gf {
		sum = aes.Block(ref.ghash.Sum())
	} else {
		sum = ref.chain
	}
	n := len(tag)
	if n > len(sum) {
		n = len(sum)
	}
	if !ct.Equal(tag[:n], sum[:n]) {
		c.fail("group %d authentication tag from processor %d diverges from the reference transcript MAC",
			gid, initiator)
	}
}
