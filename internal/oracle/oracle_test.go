package oracle_test

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"strings"
	"testing"

	"senss/internal/cpu"
	"senss/internal/crypto/ct"
	"senss/internal/machine"
	"senss/internal/oracle"
)

// testConfig is a small secured machine: 4 processors sharing one SENSS
// group, sized so the mixed workload exercises c2c transfers, upgrades,
// and dirty evictions in well under a second.
func testConfig(seed uint64) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Procs = 4
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 64 << 10
	cfg.CPU.CodeBytes = 2 << 10
	cfg.Security.Mode = machine.SecurityBus
	cfg.Security.Senss.Masks = 2
	cfg.Security.Senss.AuthInterval = 10
	cfg.Seed = seed
	cfg.Oracle = true
	return cfg
}

// mixedWorkload returns one program per processor: a ping-pong phase over
// eight shared lines (BusRd/BusRdX/BusUpgr, cache-to-cache supplies, MAC
// traffic) followed by a private sweep wide enough to overflow the L2 and
// force dirty evictions (CommitStore + Committed WB).
func mixedWorkload(m *machine.Machine, procs, iters, sweepLines int) []cpu.Program {
	shared := m.Alloc(8 * 64)
	sweep := m.Alloc(uint64(procs*sweepLines) * 64)
	for i := 0; i < 8; i++ {
		m.InitWord(shared+uint64(i)*64, uint64(i))
	}
	progs := make([]cpu.Program, procs)
	for i := 0; i < procs; i++ {
		i := i
		progs[i] = func(c *cpu.Port) {
			for n := 0; n < iters; n++ {
				addr := shared + uint64((n+i)%8)*64
				if n%3 == 0 {
					c.Store(addr, uint64(n)) // write-allocate: BusRdX or BusUpgr
				} else {
					v := c.Load(addr)
					c.Store(addr, v+1)
				}
			}
			for n := 0; n < sweepLines; n++ {
				addr := sweep + uint64(i*sweepLines+n)*64
				c.Store(addr, uint64(n))
				_ = c.Load(addr)
			}
		}
	}
	return progs
}

// TestOracleCleanAndZeroCost proves two contracts at once: a healthy
// machine never diverges from the reference models, and the checker is
// timing-invisible (identical cycle counts with it on and off).
func TestOracleCleanAndZeroCost(t *testing.T) {
	cycles := make(map[bool]uint64)
	for _, on := range []bool{false, true} {
		cfg := testConfig(1)
		cfg.Oracle = on
		m := machine.New(cfg)
		run, err := m.Run(mixedWorkload(m, cfg.Procs, 40, 1200))
		if err != nil {
			t.Fatalf("oracle=%v: %v", on, err)
		}
		if halted, why := m.Halted(); halted {
			t.Fatalf("oracle=%v: halted: %s", on, why)
		}
		cycles[on] = run.Cycles
		if on {
			if m.Oracle.Diverged() {
				t.Fatalf("clean run diverged: %s", m.Oracle.Report().Divergence)
			}
			if m.Oracle.Checked() == 0 {
				t.Fatal("oracle observed no transactions")
			}
		}
	}
	if cycles[false] != cycles[true] {
		t.Fatalf("oracle perturbed timing: %d cycles off, %d on", cycles[false], cycles[true])
	}
}

// faultedReport runs the mixed workload with fault applied after
// construction and returns the oracle's JSON report. The run must halt
// with an oracle divergence.
func faultedReport(t *testing.T, seed uint64, fault func(m *machine.Machine)) string {
	t.Helper()
	cfg := testConfig(seed)
	m := machine.New(cfg)
	progs := mixedWorkload(m, cfg.Procs, 40, 300)
	m.Load()
	fault(m)
	if _, err := m.Run(progs); err != nil {
		t.Fatalf("run: %v", err)
	}
	halted, why := m.Halted()
	if !halted || !strings.HasPrefix(why, "oracle: ") {
		t.Fatalf("expected an oracle halt, got halted=%v %q", halted, why)
	}
	if !m.Oracle.Diverged() {
		t.Fatal("halted without a divergence report")
	}
	if m.Senss.Detected() {
		t.Fatal("SENSS's own checks flagged the planted fault — the differential oracle is not needed for it")
	}
	var buf bytes.Buffer
	if err := m.Oracle.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.String()
}

// TestOracleCatchesSkippedInvalidation plants the deliberate coherence
// bug — node 1 ignores RdX/Upgr invalidations — and demonstrates that the
// oracle catches it at the first faulty transaction with a replayable
// trace: rerunning the identical seed and config reproduces the report
// byte for byte.
func TestOracleCatchesSkippedInvalidation(t *testing.T) {
	fault := func(m *machine.Machine) { m.Nodes[1].FaultSkipInvalidate = true }
	first := faultedReport(t, 1, fault)

	var r oracle.Report
	if err := json.Unmarshal([]byte(first), &r); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !strings.Contains(r.Divergence, "retains a") {
		t.Errorf("divergence %q does not name the stale copy", r.Divergence)
	}
	if len(r.Events) == 0 {
		t.Error("report carries no replay trace")
	}
	if r.Seed != 1 || r.Config == "" {
		t.Errorf("report lacks reproduction coordinates: seed=%d config=%q", r.Seed, r.Config)
	}
	assertRedactedSessions(t, &r, first)

	if second := faultedReport(t, 1, fault); second != first {
		t.Errorf("report is not replayable:\nfirst:  %s\nsecond: %s", first, second)
	}
}

// assertRedactedSessions checks that the report identifies the observed
// sessions by fingerprint only: short fixed-width hex identifiers, and no
// raw key material anywhere in the serialized report. (The session key is
// ct.FingerprintBytes*2 hex characters when disclosed as a fingerprint; a
// leaked raw key or IV would be 32 hex characters of the same value.)
func assertRedactedSessions(t *testing.T, r *oracle.Report, raw string) {
	t.Helper()
	if len(r.Sessions) == 0 {
		t.Fatal("report carries no session fingerprints")
	}
	for _, s := range r.Sessions {
		for name, fp := range map[string]string{
			"key_fp": s.KeyFP, "enc_iv_fp": s.EncIVFP, "auth_iv_fp": s.AuthIVFP,
		} {
			if len(fp) != 2*ct.FingerprintBytes {
				t.Errorf("session %d %s = %q; want %d hex chars", s.GID, name, fp, 2*ct.FingerprintBytes)
			}
			if _, err := hex.DecodeString(fp); err != nil {
				t.Errorf("session %d %s = %q is not hex: %v", s.GID, name, fp, err)
			}
		}
		if s.Members == 0 {
			t.Errorf("session %d has no members", s.GID)
		}
	}
	if !strings.Contains(raw, `"sessions"`) {
		t.Error("serialized report lacks the sessions section")
	}
}

// TestOracleCatchesMaskReuse plants the deliberate crypto bug — every SHU
// freezes its mask-bank refresh, so the one-time pad repeats — and
// demonstrates the central point of the differential design: the system's
// own checks stay silent (all members reuse identically, so decryption
// and the MAC chain keep agreeing) while the independent pad schedule
// catches the reuse, again with a byte-identical replayable report.
func TestOracleCatchesMaskReuse(t *testing.T) {
	fault := func(m *machine.Machine) { m.Senss.InjectMaskReuse(m.GID) }
	first := faultedReport(t, 1, fault)

	var r oracle.Report
	if err := json.Unmarshal([]byte(first), &r); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !strings.Contains(r.Divergence, "one-time-pad schedule") {
		t.Errorf("divergence %q does not name the pad schedule", r.Divergence)
	}

	if second := faultedReport(t, 1, fault); second != first {
		t.Errorf("report is not replayable:\nfirst:  %s\nsecond: %s", first, second)
	}
}
