// Package oracle runs untimed reference models in lockstep with the timed
// simulator and flags the first divergence between them.
//
// Two models run side by side.  The coherence model keeps a flat map of
// line address → reference value and memory image (no timing, no LRU, no
// hierarchy) and cross-checks every granted bus transaction against the
// real caches at the coherence point: who may supply, who must have
// invalidated, whether the data on the wire matches the reference value.
// The crypto model (crypto.go) recomputes the SENSS one-time-pad schedule
// and the Eq. 1 transcript MAC from the session parameters alone and
// checks every transfer's ciphertext and every authentication tag against
// them.
//
// The checker observes and never perturbs: it charges zero cycles, takes
// no locks, and issues no transactions, so golden cycle counts are
// identical with it on or off.  On divergence it freezes a replayable
// Report — the divergence message, the seed/config needed to reproduce the
// run, and a ring of the most recent bus events — and halts the engine so
// the driver surfaces the failure.
package oracle

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"senss/internal/bus"
	"senss/internal/coherence"
	"senss/internal/core"
	"senss/internal/crypto/ct"
	"senss/internal/sim"
)

// Options configures a Checker.
type Options struct {
	// Procs is the processor count (bounds supplier IDs); 0 disables the
	// supplier range check.
	Procs int
	// Window is the event-ring capacity of the replay trace (default 64).
	Window int
	// Senss carries the SENSS parameters the crypto reference model needs
	// (auth mode, mask-bank count, tag width). Leave zero when no SENSS
	// layer drives the Observer callbacks.
	Senss core.Params
}

// lineRef is the untimed reference state of one cache line.
type lineRef struct {
	value []byte
	// known marks the value architecturally stable: set after a shared
	// read or a writeback, cleared whenever a processor gains write
	// permission (RdX, Upgr, exclusive grant) and can mutate silently.
	known bool
}

// Event is one recorded bus transaction, the unit of the replay trace.
type Event struct {
	Cycle    uint64 `json:"cycle"`
	Kind     string `json:"kind"`
	Addr     uint64 `json:"addr"`
	Src      int    `json:"src"`
	Supplier int    `json:"supplier"`
	Shared   bool   `json:"shared"`
	Data     string `json:"data,omitempty"` // hex line payload for data-bearing kinds
}

// SessionFP identifies an established crypto session in a report without
// disclosing any secret: every field that is key material in the simulator
// appears only as a fingerprint — the hex of the first ct.FingerprintBytes
// bytes of its SHA-256 (ct.Fingerprint). The raw session key is never
// retained by the checker outside the reference cipher.
type SessionFP struct {
	GID      int    `json:"gid"`
	KeyFP    string `json:"key_fp"`
	Members  uint32 `json:"members"`
	EncIVFP  string `json:"enc_iv_fp"`
	AuthIVFP string `json:"auth_iv_fp"`
}

// Report is the frozen state of the first divergence: everything needed to
// reproduce and understand it. Rerunning the same seed and config yields
// the identical report. Sessions carries redacted identifiers of every
// session the oracle observed, so a divergence can be matched to the
// session that produced it without the report ever holding key bytes.
type Report struct {
	Divergence string      `json:"divergence"`
	Cycle      uint64      `json:"cycle"`
	Seed       uint64      `json:"seed"`
	Config     string      `json:"config"`
	Checked    uint64      `json:"checked"` // transactions observed before the divergence
	Sessions   []SessionFP `json:"sessions,omitempty"`
	Events     []Event     `json:"events"` // most recent bus events, oldest first
}

// Checker is the lockstep differential oracle. It implements
// bus.SecurityHook (coherence side) and core.Observer (crypto side).
type Checker struct {
	opt    Options
	engine *sim.Engine
	nodes  []*coherence.Node
	alarm  func() bool

	lines    map[uint64]*lineRef
	memory   map[uint64][]byte
	groups   map[int]*groupRef
	sessions []SessionFP // redacted establishment log, in observation order

	// pending carries the sender-side plaintext of the in-flight
	// cache-to-cache transfer from the Observer callback to the bus hook,
	// where the requester's decrypted view is compared against it.
	pendingGID   int
	pendingPlain [][16]byte
	pendingSet   bool

	ring  []Event
	next  int
	total uint64

	report *Report
	seed   uint64
	config string
}

// New creates a checker. Wire it with SetEngine/SetNodes/SetAlarm/SetMeta,
// attach it to the bus with AttachHook, and install it as the SENSS
// observer before sessions are established.
func New(opt Options) *Checker {
	if opt.Window <= 0 {
		opt.Window = 64
	}
	return &Checker{
		opt:    opt,
		lines:  make(map[uint64]*lineRef),
		memory: make(map[uint64][]byte),
		groups: make(map[int]*groupRef),
		ring:   make([]Event, 0, opt.Window),
	}
}

// SetEngine lets the checker freeze the machine on divergence (the same
// global-alarm semantics the SENSS layer uses for detections).
func (c *Checker) SetEngine(e *sim.Engine) { c.engine = e }

// SetNodes gives the checker read access to the real cache hierarchies for
// the cross-cache structural checks. Without it only the memory-image,
// value, and crypto checks run.
func (c *Checker) SetNodes(ns []*coherence.Node) { c.nodes = ns }

// SetAlarm installs a predicate reporting whether the system under test
// has already raised its own alarm; the oracle then suppresses payload and
// tag checks so a genuine detection is not double-reported as divergence.
func (c *Checker) SetAlarm(f func() bool) { c.alarm = f }

// SetMeta records the reproduction coordinates stamped into the report.
func (c *Checker) SetMeta(seed uint64, config string) {
	c.seed, c.config = seed, config
}

// Diverged reports whether a divergence was found.
func (c *Checker) Diverged() bool { return c.report != nil }

// Report returns the frozen divergence report, or nil when clean.
func (c *Checker) Report() *Report { return c.report }

// Checked returns how many bus transactions the checker has observed.
func (c *Checker) Checked() uint64 { return c.total }

// WriteJSON dumps the divergence report (or {"divergence":""} when clean).
func (c *Checker) WriteJSON(w io.Writer) error {
	r := c.report
	if r == nil {
		r = &Report{Seed: c.seed, Config: c.config, Checked: c.total,
			Sessions: append([]SessionFP(nil), c.sessions...)}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func (c *Checker) alarmRaised() bool { return c.alarm != nil && c.alarm() }

// fail freezes the first divergence and halts the engine. Later calls are
// no-ops: the first divergence is the replayable one.
func (c *Checker) fail(format string, args ...any) {
	if c.report != nil {
		return
	}
	var cycle uint64
	if c.engine != nil {
		cycle = c.engine.Now()
	}
	c.report = &Report{
		Divergence: fmt.Sprintf(format, args...),
		Cycle:      cycle,
		Seed:       c.seed,
		Config:     c.config,
		Checked:    c.total,
		Sessions:   append([]SessionFP(nil), c.sessions...),
		Events:     c.events(),
	}
	if c.engine != nil {
		c.engine.Halt("oracle: " + c.report.Divergence)
	}
}

// events returns the ring contents oldest-first.
func (c *Checker) events() []Event {
	out := make([]Event, 0, len(c.ring))
	if len(c.ring) < cap(c.ring) {
		return append(out, c.ring...)
	}
	out = append(out, c.ring[c.next:]...)
	return append(out, c.ring[:c.next]...)
}

func (c *Checker) record(p *sim.Proc, t *bus.Transaction) {
	var cycle uint64
	switch {
	case p != nil:
		cycle = p.Now()
	case c.engine != nil:
		cycle = c.engine.Now()
	}
	ev := Event{Cycle: cycle, Kind: t.Kind.String(), Addr: t.Addr,
		Src: t.Src, Supplier: t.SupplierID, Shared: t.Shared}
	if t.Kind.HasData() && t.Data != nil {
		ev.Data = hex.EncodeToString(t.Data)
	}
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, ev)
	} else {
		c.ring[c.next] = ev
		c.next = (c.next + 1) % cap(c.ring)
	}
	c.total++
}

// OnTransaction implements bus.SecurityHook: the coherence-side lockstep
// check, run at the coherence point (post-snoop, pre-commit) of every
// granted transaction. The checker observes without disturbing timing:
// zero cycles is its contract.
func (c *Checker) OnTransaction(p *sim.Proc, t *bus.Transaction) uint64 {
	c.record(p, t)
	if c.report == nil {
		switch t.Kind {
		case bus.Rd:
			c.checkRead(t)
		case bus.RdX:
			c.checkReadX(t)
		case bus.Upgr:
			c.checkUpgrade(t)
		case bus.WB:
			c.applyWriteBack(t)
		}
	}
	c.pendingSet = false
	return 0
}

// OnCommitStore implements the bus commit callback: a dirty victim's bytes
// reached memory at the coherence point, ahead of its Committed WB.
func (c *Checker) OnCommitStore(src, gid int, addr uint64, data []byte) {
	c.memory[addr] = cloneBytes(data)
	c.setValue(addr, data, true)
}

// scanOthers inspects every real cache except the requester's: does any
// hold a valid copy, and does any hold it dirty (M/O)?
func (c *Checker) scanOthers(t *bus.Transaction) (shared bool, dirty int) {
	dirty = -1
	for i, n := range c.nodes {
		if i == t.Src || n == nil {
			continue
		}
		l := n.L2.Peek(t.Addr)
		if l == nil {
			continue
		}
		shared = true
		if dirty < 0 && l.State.Dirty() {
			dirty = i
		}
	}
	return shared, dirty
}

func (c *Checker) validSupplier(t *bus.Transaction) bool {
	if t.SupplierID < 0 || t.SupplierID == t.Src ||
		(c.opt.Procs > 0 && t.SupplierID >= c.opt.Procs) {
		c.fail("%s on %#x names an impossible supplier %d (requester %d)",
			t.Kind, t.Addr, t.SupplierID, t.Src)
		return false
	}
	return true
}

func (c *Checker) checkRead(t *bus.Transaction) {
	if t.SupplierID == bus.MemorySupplier {
		shared, dirty := c.scanOthers(t)
		if dirty >= 0 {
			c.fail("BusRd on %#x supplied by memory while processor %d holds the line dirty", t.Addr, dirty)
			return
		}
		if c.nodes != nil && t.Shared != shared {
			c.fail("BusRd on %#x reports shared=%v but the caches say shared=%v", t.Addr, t.Shared, shared)
			return
		}
		if !c.checkMemoryData(t) {
			return
		}
	} else {
		if !c.validSupplier(t) {
			return
		}
		if c.nodes != nil {
			if l := c.nodes[t.SupplierID].L2.Peek(t.Addr); l == nil {
				c.fail("BusRd supplier %d no longer holds %#x after the transfer", t.SupplierID, t.Addr)
				return
			}
		}
		if !t.Shared {
			c.fail("cache-to-cache BusRd on %#x without the shared flag", t.Addr)
			return
		}
		if !c.checkPayload(t) {
			return
		}
	}
	// A shared grant is architecturally stable (every holder needs the bus
	// to write); an exclusive grant can be modified silently, so the
	// reference value becomes unknown.
	c.setValue(t.Addr, t.Data, t.Shared)
}

func (c *Checker) checkReadX(t *bus.Transaction) {
	for i, n := range c.nodes {
		if i == t.Src || n == nil {
			continue
		}
		if l := n.L2.Peek(t.Addr); l != nil {
			c.fail("processor %d retains a %s copy of %#x after BusRdX from processor %d",
				i, l.State, t.Addr, t.Src)
			return
		}
	}
	if t.SupplierID == bus.MemorySupplier {
		if !c.checkMemoryData(t) {
			return
		}
	} else {
		if !c.validSupplier(t) {
			return
		}
		if !c.checkPayload(t) {
			return
		}
	}
	c.setValue(t.Addr, t.Data, false)
}

func (c *Checker) checkUpgrade(t *bus.Transaction) {
	if c.nodes != nil {
		if l := c.nodes[t.Src].L2.Peek(t.Addr); l == nil {
			c.fail("BusUpgr from processor %d on %#x it no longer holds (should have degraded to BusRdX)",
				t.Src, t.Addr)
			return
		}
	}
	for i, n := range c.nodes {
		if i == t.Src || n == nil {
			continue
		}
		if l := n.L2.Peek(t.Addr); l != nil {
			c.fail("processor %d retains a %s copy of %#x after BusUpgr from processor %d",
				i, l.State, t.Addr, t.Src)
			return
		}
	}
	c.setValue(t.Addr, nil, false)
}

func (c *Checker) applyWriteBack(t *bus.Transaction) {
	if t.Committed {
		// Contents already reached memory at the coherence point, observed
		// through OnCommitStore; other transactions may have legally
		// modified the line since, so there is nothing to compare here.
		return
	}
	c.memory[t.Addr] = cloneBytes(t.Data)
	c.setValue(t.Addr, t.Data, true)
}

// checkMemoryData compares a memory-supplied line against the reference
// image, adopting the line on first sight (tree warm-up and preloaded data
// regions never ride the bus, so their first fetch defines the image).
func (c *Checker) checkMemoryData(t *bus.Transaction) bool {
	img, ok := c.memory[t.Addr]
	if !ok {
		c.memory[t.Addr] = cloneBytes(t.Data)
		return true
	}
	if !ct.Equal(img, t.Data) {
		c.fail("memory-supplied data for %#x diverges from the reference memory image", t.Addr)
		return false
	}
	return true
}

// checkPayload validates a cache-to-cache data payload: against the
// sender's pre-encryption plaintext (when the SENSS layer reported one for
// this transfer) and against the reference value model.
func (c *Checker) checkPayload(t *bus.Transaction) bool {
	if c.pendingSet && c.pendingGID == t.GID && !c.alarmRaised() {
		for j, b := range c.pendingPlain {
			lo := j * len(b)
			if lo+len(b) > len(t.Data) || !ct.Equal(b[:], t.Data[lo:lo+len(b)]) {
				c.fail("decrypted payload of the %#x transfer diverges from the sender's plaintext (block %d)",
					t.Addr, j)
				return false
			}
		}
	}
	if li := c.lines[t.Addr]; li != nil && li.known && !ct.Equal(li.value, t.Data) {
		c.fail("cache-to-cache data for %#x diverges from the reference value", t.Addr)
		return false
	}
	return true
}

func (c *Checker) setValue(addr uint64, data []byte, known bool) {
	li := c.lines[addr]
	if li == nil {
		li = &lineRef{}
		c.lines[addr] = li
	}
	li.known = known
	if data != nil {
		li.value = cloneBytes(data)
	} else if !known {
		li.value = nil
	}
}

func cloneBytes(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
