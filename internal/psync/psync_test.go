package psync

import (
	"testing"

	"senss/internal/bus"
	"senss/internal/coherence"
	"senss/internal/cpu"
	"senss/internal/mem"
	"senss/internal/sim"
)

// rig builds an n-processor system and runs one program per processor.
func rig(t *testing.T, procs int, progs func(tid int) cpu.Program) uint64 {
	t.Helper()
	e := sim.NewEngine()
	e.SetLimit(500_000_000)
	store := mem.New()
	b := bus.New(e, bus.Timing{
		BusCycle: 10, C2CLat: 120, MemLat: 180, BytesPerBusCycle: 32, LineBytes: 64,
	}, &bus.SimpleMemory{Backing: store})
	params := coherence.Params{
		L1Size: 1 << 10, L1Ways: 2, L1Line: 32,
		L2Size: 16 << 10, L2Ways: 4, L2Line: 64,
		L1HitLat: 2, L2HitLat: 10, StoreLat: 2, RMWLat: 4,
	}
	nodes := make([]*coherence.Node, procs)
	for i := range nodes {
		nodes[i] = coherence.NewNode(i, params, b)
	}
	for i := 0; i < procs; i++ {
		i := i
		prog := progs(i)
		e.Spawn("cpu", func(p *sim.Proc) {
			prog(cpu.NewPort(p, nodes[i], cpu.Params{}))
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Read back through any cache or memory.
	return e.Now()
}

func TestLockMutualExclusion(t *testing.T) {
	const procs, iters = 4, 50
	lock := NewLock(0x1000)
	inside := 0
	maxInside := 0
	rig(t, procs, func(tid int) cpu.Program {
		return func(c *cpu.Port) {
			for k := 0; k < iters; k++ {
				lock.Acquire(c)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				c.Think(13)
				inside--
				lock.Release(c)
			}
		}
	})
	if maxInside != 1 {
		t.Errorf("%d threads inside the critical section", maxInside)
	}
}

func TestWithLock(t *testing.T) {
	lock := NewLock(0x1000)
	ran := 0
	rig(t, 2, func(tid int) cpu.Program {
		return func(c *cpu.Port) {
			lock.WithLock(c, func() { ran++ })
		}
	})
	if ran != 2 {
		t.Errorf("WithLock bodies ran %d times", ran)
	}
}

func TestLockAddr(t *testing.T) {
	if NewLock(0x2040).Addr() != 0x2040 {
		t.Error("Addr mismatch")
	}
}

func TestBarrierAllArriveBeforeAnyLeaves(t *testing.T) {
	const procs = 4
	bar := NewBarrier(0x3000, procs)
	arrive := make([]uint64, procs)
	leave := make([]uint64, procs)
	rig(t, procs, func(tid int) cpu.Program {
		return func(c *cpu.Port) {
			var ctx Context
			c.Think(uint64(tid) * 777)
			arrive[tid] = c.Now()
			bar.Wait(c, &ctx)
			leave[tid] = c.Now()
		}
	})
	var lastArrive uint64
	for _, a := range arrive {
		if a > lastArrive {
			lastArrive = a
		}
	}
	for tid, l := range leave {
		if l < lastArrive {
			t.Errorf("thread %d left at %d before last arrival %d", tid, l, lastArrive)
		}
	}
}

func TestBarrierReusableAcrossPhases(t *testing.T) {
	const procs, phases = 3, 5
	bar := NewBarrier(0x3000, procs)
	counts := make([]int, phases)
	rig(t, procs, func(tid int) cpu.Program {
		return func(c *cpu.Port) {
			var ctx Context
			for ph := 0; ph < phases; ph++ {
				counts[ph]++
				bar.Wait(c, &ctx)
				// After the barrier, every thread must observe all
				// arrivals of this phase.
				if counts[ph] != procs {
					t.Errorf("phase %d: saw %d arrivals after barrier", ph, counts[ph])
				}
				bar.Wait(c, &ctx)
			}
		}
	})
}

func TestBarrierOfOne(t *testing.T) {
	bar := NewBarrier(0x3000, 1)
	rig(t, 1, func(tid int) cpu.Program {
		return func(c *cpu.Port) {
			var ctx Context
			for i := 0; i < 3; i++ {
				bar.Wait(c, &ctx) // must not deadlock
			}
		}
	})
}

func TestBarrierPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBarrier(_, 0) did not panic")
		}
	}()
	NewBarrier(0, 0)
}

func TestTicketLockMutualExclusionAndFairness(t *testing.T) {
	const procs, iters = 4, 30
	lock := NewTicketLock(0x5000)
	inside, maxInside := 0, 0
	var order []int
	rig(t, procs, func(tid int) cpu.Program {
		return func(c *cpu.Port) {
			for k := 0; k < iters; k++ {
				lock.Acquire(c)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				order = append(order, tid)
				c.Think(7)
				inside--
				lock.Release(c)
				c.Think(30)
			}
		}
	})
	if maxInside != 1 {
		t.Errorf("mutual exclusion violated: %d inside", maxInside)
	}
	if len(order) != procs*iters {
		t.Errorf("acquisitions = %d", len(order))
	}
	// Fairness: under steady contention no thread should starve — every
	// thread appears within any window of 2×procs acquisitions once all
	// are contending.
	counts := make([]int, procs)
	for _, tid := range order {
		counts[tid]++
	}
	for tid, c := range counts {
		if c != iters {
			t.Errorf("thread %d acquired %d times, want %d", tid, c, iters)
		}
	}
}

func TestRWLockReadersShareWritersExclude(t *testing.T) {
	const procs = 4
	lock := NewRWLock(0x6000)
	readers, maxReaders := 0, 0
	writers, maxTogether := 0, 0
	rig(t, procs, func(tid int) cpu.Program {
		return func(c *cpu.Port) {
			for k := 0; k < 25; k++ {
				if tid == 0 { // one writer thread
					lock.Lock(c)
					writers++
					if readers > 0 || writers > 1 {
						maxTogether++
					}
					c.Think(9)
					writers--
					lock.Unlock(c)
					c.Think(40)
				} else {
					lock.RLock(c)
					readers++
					if readers > maxReaders {
						maxReaders = readers
					}
					if writers > 0 {
						maxTogether++
					}
					c.Think(400)
					readers--
					lock.RUnlock(c)
					c.Think(15)
				}
			}
		}
	})
	if maxTogether != 0 {
		t.Errorf("writer overlapped with other holders %d times", maxTogether)
	}
	if maxReaders < 2 {
		t.Errorf("readers never shared (max concurrent = %d)", maxReaders)
	}
}

func TestLockHandoffUnderContention(t *testing.T) {
	// All threads repeatedly lock; total acquisitions must equal the sum
	// of iterations, demonstrating no lost wakeups or stolen locks.
	const procs, iters = 4, 40
	lock := NewLock(0x1000)
	total := 0
	rig(t, procs, func(tid int) cpu.Program {
		return func(c *cpu.Port) {
			for k := 0; k < iters; k++ {
				lock.Acquire(c)
				total++
				lock.Release(c)
			}
		}
	})
	if total != procs*iters {
		t.Errorf("total acquisitions %d, want %d", total, procs*iters)
	}
}
