// Package psync provides the synchronization primitives the parallel
// workloads use — spinlocks and sense-reversing barriers — built purely on
// the simulated memory interface, so lock and barrier traffic flows through
// the coherence protocol (and therefore through SENSS) exactly like any
// other sharing.
package psync

import (
	"fmt"

	"senss/internal/cpu"
)

// Lock is a test-and-test-and-set spinlock occupying one simulated word.
type Lock struct {
	addr uint64
}

// NewLock returns a lock at the given word address, which must be zeroed
// (unlocked) before use.
func NewLock(addr uint64) *Lock { return &Lock{addr: addr} }

// Addr returns the lock word's address.
func (l *Lock) Addr() uint64 { return l.addr }

// spinBackoff is the compute delay between spin probes, keeping the
// polling rate realistic without flooding the local cache counters.
const spinBackoff = 10

// Acquire spins until the lock is held by the caller.
func (l *Lock) Acquire(c *cpu.Port) {
	for {
		if c.CAS(l.addr, 0, 1) {
			return
		}
		// Test-and-test-and-set: spin on local (cached, Shared) reads so
		// the wait generates no bus traffic until the holder releases.
		for c.Load(l.addr) != 0 {
			c.Think(spinBackoff)
		}
	}
}

// Release unlocks. Only the holder may call it.
func (l *Lock) Release(c *cpu.Port) {
	c.Store(l.addr, 0)
}

// WithLock runs fn under the lock.
func (l *Lock) WithLock(c *cpu.Port, fn func()) {
	l.Acquire(c)
	fn()
	l.Release(c)
}

// TicketLock is a FIFO-fair spinlock: two counters (next ticket, now
// serving) on separate cache lines. Under contention each release
// invalidates only the serving line, and waiters acquire strictly in
// arrival order — the classic fairness upgrade over test-and-set.
type TicketLock struct {
	next    uint64 // ticket dispenser word
	serving uint64 // now-serving word (separate line)
}

// NewTicketLock returns a ticket lock using two words at addr and
// addr+64 (both must be zeroed).
func NewTicketLock(addr uint64) *TicketLock {
	return &TicketLock{next: addr, serving: addr + 64}
}

// Acquire takes a ticket and spins until served.
func (l *TicketLock) Acquire(c *cpu.Port) {
	ticket := c.Add(l.next, 1)
	for c.Load(l.serving) != ticket {
		c.Think(spinBackoff)
	}
}

// Release serves the next ticket.
func (l *TicketLock) Release(c *cpu.Port) {
	c.Store(l.serving, c.Load(l.serving)+1)
}

// RWLock is a reader-writer spinlock: a single word holds the reader
// count, with the high bit as the writer flag.
type RWLock struct {
	addr uint64
}

// rwWriter is the writer-held bit.
const rwWriter = uint64(1) << 63

// NewRWLock returns a reader-writer lock at the given (zeroed) word.
func NewRWLock(addr uint64) *RWLock { return &RWLock{addr: addr} }

// RLock acquires shared access.
func (l *RWLock) RLock(c *cpu.Port) {
	for {
		acquired := false
		c.RMW(l.addr, func(v uint64) uint64 {
			if v&rwWriter == 0 {
				acquired = true
				return v + 1
			}
			return v
		})
		if acquired {
			return
		}
		for c.Load(l.addr)&rwWriter != 0 {
			c.Think(spinBackoff)
		}
	}
}

// RUnlock releases shared access.
func (l *RWLock) RUnlock(c *cpu.Port) {
	c.RMW(l.addr, func(v uint64) uint64 { return v - 1 })
}

// Lock acquires exclusive access (writer-preference is not implemented;
// writers contend with arriving readers).
func (l *RWLock) Lock(c *cpu.Port) {
	for {
		acquired := false
		c.RMW(l.addr, func(v uint64) uint64 {
			if v == 0 {
				acquired = true
				return rwWriter
			}
			return v
		})
		if acquired {
			return
		}
		for c.Load(l.addr) != 0 {
			c.Think(spinBackoff)
		}
	}
}

// Unlock releases exclusive access.
func (l *RWLock) Unlock(c *cpu.Port) {
	c.Store(l.addr, 0)
}

// Barrier is a centralized sense-reversing barrier for n participants. It
// occupies two simulated words (count at addr, sense at addr+8) and each
// participant keeps its local sense in Context.
type Barrier struct {
	n     int
	count uint64
	sense uint64
}

// NewBarrier returns a barrier for n participants using two words at addr
// (which must be zeroed).
func NewBarrier(addr uint64, n int) *Barrier {
	if n <= 0 {
		panic(fmt.Sprintf("psync: barrier of %d", n))
	}
	return &Barrier{n: n, count: addr, sense: addr + 8}
}

// Context is a participant's barrier-local state; zero value is ready.
type Context struct {
	sense uint64
}

// Wait blocks (in simulated time) until all n participants arrive.
func (b *Barrier) Wait(c *cpu.Port, ctx *Context) {
	ctx.sense ^= 1
	arrived := c.Add(b.count, 1) + 1
	if int(arrived) == b.n {
		c.Store(b.count, 0)
		c.Store(b.sense, ctx.sense) // release everyone
		return
	}
	for c.Load(b.sense) != ctx.sense {
		c.Think(spinBackoff)
	}
}
