package fuzzing

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Targets lists the fuzz targets in their canonical order — the corpus
// directory names under testdata/fuzz/.
func Targets() []string {
	return []string{"FuzzSchedule", "FuzzAdversary", "FuzzConfig"}
}

// Run dispatches one input to the named target's runner.
func Run(target string, data []byte) error {
	switch target {
	case "FuzzSchedule":
		return RunSchedule(data)
	case "FuzzAdversary":
		return RunAdversary(data)
	case "FuzzConfig":
		return RunConfig(data)
	}
	return fmt.Errorf("fuzzing: unknown target %q (want one of %v)", target, Targets())
}

// ParseCorpusFile reads a native Go fuzz corpus entry ("go test fuzz v1"
// header followed by one []byte literal) and returns the input bytes.
func ParseCorpusFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(raw), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		return nil, fmt.Errorf("%s: not a go fuzz corpus file", path)
	}
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		inner, ok := strings.CutPrefix(line, "[]byte(")
		if !ok {
			return nil, fmt.Errorf("%s: unsupported corpus value %q (only []byte entries)", path, line)
		}
		inner = strings.TrimSuffix(inner, ")")
		s, err := strconv.Unquote(inner)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return []byte(s), nil
	}
	return nil, fmt.Errorf("%s: no corpus value found", path)
}

// ReplayResult is the outcome of replaying one corpus entry.
type ReplayResult struct {
	Target string
	Entry  string // file name within the target's corpus directory
	Err    error  // nil = both models agree
	WallMS int64  // host-side wall time of the replay
}

// ReplayCorpus replays every checked-in corpus entry under root (the
// testdata/fuzz directory), in sorted order per target, and returns one
// result per entry. Missing target directories are skipped silently so a
// partial corpus still replays.
func ReplayCorpus(root string) ([]ReplayResult, error) {
	var out []ReplayResult
	for _, target := range Targets() {
		dir := filepath.Join(root, target)
		entries, err := os.ReadDir(dir)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			data, err := ParseCorpusFile(filepath.Join(dir, e.Name()))
			if err != nil {
				out = append(out, ReplayResult{Target: target, Entry: e.Name(), Err: err})
				continue
			}
			// Wall time is host-side progress reporting for the replay
			// driver; the replay itself is a pure function of the bytes.
			start := time.Now() //senss-lint:ignore nondeterm replay timing is operator-facing and never feeds simulated state
			runErr := Run(target, data)
			out = append(out, ReplayResult{
				Target: target,
				Entry:  e.Name(),
				Err:    runErr,
				WallMS: time.Since(start).Milliseconds(),
			})
		}
	}
	return out, nil
}
