package fuzzing

import (
	"testing"
)

func addSeeds(f *testing.F, target string) {
	for _, s := range SeedCorpus(target) {
		f.Add(s)
	}
}

// FuzzSchedule fuzzes per-processor memory-access schedules against the
// lockstep differential oracle on a secured machine.
func FuzzSchedule(f *testing.F) {
	addSeeds(f, "FuzzSchedule")
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := RunSchedule(data); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzAdversary fuzzes drop/corrupt/reorder/replay/spoof scripts against
// the protocol-level rig: a deviated observation stream must be detected,
// an undeviated one must leave system and oracle silent.
func FuzzAdversary(f *testing.F) {
	addSeeds(f, "FuzzAdversary")
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := RunAdversary(data); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzConfig fuzzes machine shapes — procs × L2 × masks × interval ×
// mode — under the oracle on a fixed mixed workload.
func FuzzConfig(f *testing.F) {
	addSeeds(f, "FuzzConfig")
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := RunConfig(data); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSeedCorpusFilesMatch pins the checked-in corpus files to
// SeedCorpus: every in-code seed must exist as a corpus file with
// identical bytes, so `go test` replay, `-fuzz` minimization, and
// cmd/senss-fuzz all exercise the same inputs.
func TestSeedCorpusFilesMatch(t *testing.T) {
	for _, target := range Targets() {
		seeds := SeedCorpus(target)
		for i, want := range seeds {
			path := corpusPath(target, i)
			got, err := ParseCorpusFile(path)
			if err != nil {
				t.Errorf("%s seed %d: %v", target, i, err)
				continue
			}
			if string(got) != string(want) {
				t.Errorf("%s seed %d: corpus file %s holds %q, code seeds %q",
					target, i, path, got, want)
			}
		}
	}
}

func corpusPath(target string, i int) string {
	return "testdata/fuzz/" + target + "/" + seedName(i)
}

func seedName(i int) string {
	return "seed-" + string(rune('a'+i))
}
