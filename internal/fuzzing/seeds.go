package fuzzing

// SeedCorpus returns the seed inputs for a fuzz target. They are added
// both in code (f.Add in fuzz_test.go) and as checked-in corpus files
// under testdata/fuzz/<Target>/ — TestSeedCorpusFilesMatch pins the two
// representations to each other, and cmd/senss-fuzz replays the files.
func SeedCorpus(target string) [][]byte {
	switch target {
	case "FuzzSchedule":
		return [][]byte{
			[]byte(""),                        // empty schedule: warm-up traffic only
			[]byte("senss differential"),      // mixed ops over a few lines
			[]byte("AAAAAAAAAAAAAAAAAAAAAAA"), // one proc hammering one line
			[]byte("\x00\x01\x05\x02\x09\x03\x0d\x01\x11\x02\x15\x03\x19\x01\x1d"), // all procs, spread lines
		}
	case "FuzzAdversary":
		return [][]byte{
			[]byte(""),                     // clean run, no steps
			[]byte("\x10\x03\x00\x01\x07"), // drop one message to one victim
			[]byte("\x18\x02\x02\x02\x00\x05\x01\x03\x21"),                 // reorder + corrupt
			[]byte("\x20\x04\x04\x01\x02\x04\x03\x01\x02\x06\x03\x02\x55"), // spoof + replay mix
		}
	case "FuzzConfig":
		return [][]byte{
			[]byte(""),                         // default shape
			[]byte("\x03\x01\x02\x04\x01\x07"), // 4 procs, gf mode
			[]byte("\x07\x03\x03\x00\x06\x2a"), // 8 procs, adaptive+perfect
			[]byte("\x00\x00\x00\x00\x00\x00"), // 1 proc, no c2c at all
		}
	}
	return nil
}
