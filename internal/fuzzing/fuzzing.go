// Package fuzzing hosts the deterministic decoders and runners behind the
// native `go test -fuzz` targets and the cmd/senss-fuzz replay driver.
//
// Three byte-string grammars are fuzzed, each against the lockstep
// differential oracle (internal/oracle):
//
//   - schedules: per-processor memory-access sequences driving a full
//     secured machine (FuzzSchedule),
//   - adversary scripts: drop/corrupt/reorder/replay/spoof step lists for
//     the protocol-level SENSS rig, with the ground-truth property that a
//     deviated observation stream MUST be detected and an undeviated run
//     MUST stay silent and oracle-clean — never both silent
//     (FuzzAdversary),
//   - machine configurations: procs × L2 × mask banks × auth interval ×
//     auth mode shapes (FuzzConfig).
//
// Every runner is a pure function of its input bytes — fixed seeds, no
// wall clock, no goroutines — so any crasher the fuzzer finds replays
// byte-for-byte under cmd/senss-fuzz and as a plain corpus entry.
package fuzzing

import (
	"fmt"

	"senss/internal/attack"
	"senss/internal/bus"
	"senss/internal/core"
	"senss/internal/cpu"
	"senss/internal/crypto"
	"senss/internal/crypto/aes"
	"senss/internal/machine"
	"senss/internal/oracle"
	"senss/internal/rng"
)

// rigSeed keys the deterministic session material (keys, IVs) of every
// fuzz rig. Changing it invalidates nothing but makes old crashers
// non-reproducible — treat it like a golden value.
const rigSeed = 0x5e55f022

// ---------------------------------------------------------------------------
// Target: workload memory-access schedules.

// schedOp is one decoded memory operation.
type schedOp struct {
	proc   int
	action int // 0 = load, 1 = store, 2 = rmw-add
	line   int
}

const (
	schedProcs    = 4
	schedLines    = 24
	schedMaxOps   = 2048
	schedActCount = 3
)

// decodeSchedule maps an arbitrary byte string onto a bounded list of
// memory operations: two bytes per op — processor and action from the
// first, target line from the second.
func decodeSchedule(data []byte) []schedOp {
	n := len(data) / 2
	if n > schedMaxOps {
		n = schedMaxOps
	}
	ops := make([]schedOp, 0, n)
	for i := 0; i < n; i++ {
		a, b := data[2*i], data[2*i+1]
		ops = append(ops, schedOp{
			proc:   int(a) % schedProcs,
			action: int(a>>2) % schedActCount,
			line:   int(b) % schedLines,
		})
	}
	return ops
}

// scheduleConfig is the fixed machine shape every schedule runs on: small
// caches so evictions happen, SENSS on with a short interval so MAC
// traffic interleaves densely with the schedule.
func scheduleConfig() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Procs = schedProcs
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 16 << 10
	cfg.CPU.CodeBytes = 2 << 10
	cfg.Security.Mode = machine.SecurityBus
	cfg.Security.Senss.Masks = 2
	cfg.Security.Senss.AuthInterval = 5
	cfg.Seed = rigSeed
	cfg.Oracle = true
	return cfg
}

// RunSchedule decodes data into a memory-access schedule, runs it on a
// secured machine in lockstep with the differential oracle, and returns
// nil when the timed simulator and the reference models agree.
func RunSchedule(data []byte) error {
	ops := decodeSchedule(data)
	cfg := scheduleConfig()
	m := machine.New(cfg)
	base := m.Alloc(schedLines * 64)
	for i := 0; i < schedLines; i++ {
		m.InitWord(base+uint64(i)*64, uint64(i))
	}
	perProc := make([][]schedOp, cfg.Procs)
	for _, op := range ops {
		perProc[op.proc] = append(perProc[op.proc], op)
	}
	progs := make([]cpu.Program, cfg.Procs)
	for i := 0; i < cfg.Procs; i++ {
		mine := perProc[i]
		progs[i] = func(c *cpu.Port) {
			for k, op := range mine {
				addr := base + uint64(op.line)*64
				switch op.action {
				case 0:
					_ = c.Load(addr)
				case 1:
					c.Store(addr, uint64(k))
				default:
					_ = c.Add(addr, 1)
				}
			}
		}
	}
	return checkMachine(m, progs)
}

// checkMachine runs progs and folds every disagreement channel into one
// error: engine errors, halts (the oracle halts on divergence), the
// divergence report itself, and the MOESI invariants of the final state.
func checkMachine(m *machine.Machine, progs []cpu.Program) error {
	if _, err := m.Run(progs); err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if m.Oracle.Diverged() {
		return divergenceError(m.Oracle)
	}
	if halted, why := m.Halted(); halted {
		return fmt.Errorf("halted: %s", why)
	}
	if err := m.CheckInvariants(); err != nil {
		return fmt.Errorf("final state: %w", err)
	}
	return nil
}

// divergenceError renders a checker's report as the error the fuzzer (and
// cmd/senss-fuzz) surfaces.
func divergenceError(c *oracle.Checker) error {
	r := c.Report()
	return fmt.Errorf("oracle divergence after %d transactions at cycle %d: %s",
		r.Checked, r.Cycle, r.Divergence)
}

// ---------------------------------------------------------------------------
// Target: adversary scenario scripts.

const (
	advProcs        = 4
	advMaxSteps     = 32
	advMinTransfers = 8
	advMaxTransfers = 64
)

// decodeAdversary maps a byte string onto a transfer count and a bounded
// attack.Script step list: four bytes per step.
func decodeAdversary(data []byte) (transfers int, steps []attack.Step) {
	transfers = advMinTransfers
	if len(data) > 0 {
		transfers = advMinTransfers + int(data[0])%(advMaxTransfers-advMinTransfers+1)
		data = data[1:]
	}
	n := len(data) / 4
	if n > advMaxSteps {
		n = advMaxSteps
	}
	for i := 0; i < n; i++ {
		b := data[4*i : 4*i+4]
		steps = append(steps, attack.Step{
			Seq:    uint64(b[0]) % uint64(transfers),
			Action: int(b[1]) % attack.ActCount,
			Victim: int(b[2]) % advProcs,
			Arg:    int(b[3]),
		})
	}
	return transfers, steps
}

// RunAdversary decodes data into an adversary script, runs it against the
// protocol-level SENSS rig with the crypto reference model observing, and
// enforces the two-sided property: a deviated observation stream must be
// detected, and an undeviated run must leave both the system and the
// oracle silent — never both silent about a real deviation.
func RunAdversary(data []byte) error {
	transfers, steps := decodeAdversary(data)
	// The crypto backend is an extra fuzzed dimension, chosen without
	// disturbing the step encoding (so the checked-in corpus keeps its
	// meaning): the oracle always recomputes with the reference AES, so
	// stdlib-backend runs are lockstep-checked against it here too.
	backends := crypto.Backends()
	params := core.Params{
		Masks:        2,
		Perfect:      true,
		AuthInterval: 10,
		MACTagBytes:  16,
		Backend:      backends[len(data)%len(backends)],
	}
	sys := core.NewSystem(nil, nil, advProcs, params, false)
	checker := oracle.New(oracle.Options{Procs: advProcs, Senss: params})
	checker.SetAlarm(sys.Detected)
	sys.SetObserver(checker)

	r := rng.New(rigSeed)
	key := aes.Block(r.Block16())
	encIV := aes.Block(r.Block16())
	authIV := aes.Block(r.Block16())
	const gid = 1
	if err := sys.Establish(gid, key, core.MemberMask(0, 1, 2, 3), encIV, authIV); err != nil {
		return fmt.Errorf("establish: %w", err)
	}

	script := attack.NewScript(advProcs, steps)
	sys.SetTamperer(script)
	line := make([]byte, core.BlocksPerLine*16)
	for i := 0; i < transfers && !sys.Detected(); i++ {
		for j := range line {
			line[j] = byte(i + j)
		}
		sender := i % advProcs
		requester := (i + 1) % advProcs
		t := &bus.Transaction{
			Kind: bus.Rd, Addr: 0x1000, Src: requester, GID: gid,
			SupplierID: sender, Data: line,
		}
		sys.OnTransaction(nil, t)
	}
	sys.ForceAuthentication(gid)

	deviated, detected := script.Deviated(), sys.Detected()
	switch {
	case deviated && !detected:
		return fmt.Errorf("adversary deviated the observation stream (%d steps, %d transfers) and SENSS stayed silent",
			len(steps), transfers)
	case !deviated && detected:
		return fmt.Errorf("SENSS raised an alarm on an undeviated run (%d steps, %d transfers)",
			len(steps), transfers)
	case !deviated && checker.Diverged():
		return fmt.Errorf("oracle diverged on an undeviated run: %s", checker.Report().Divergence)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Target: machine configuration shapes.

// RunConfig decodes data into a machine configuration — procs × L2 size ×
// mask banks × auth interval × auth mode × perfect/adaptive — and runs a
// fixed mixed workload on it under the oracle. Shapes the machine itself
// rejects are skipped, not failures.
func RunConfig(data []byte) error {
	get := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	cfg := machine.DefaultConfig()
	cfg.Procs = 1 + int(get(0))%8
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = (16 << 10) << (int(get(1)) % 4)
	cfg.CPU.CodeBytes = 2 << 10
	cfg.Security.Mode = machine.SecurityBus
	cfg.Security.Senss.Masks = []int{1, 2, 4, 8}[int(get(2))%4]
	cfg.Security.Senss.AuthInterval = 1 + int(get(3))%128
	cfg.Security.Senss.AuthMode = core.AuthMode(int(get(4)) % 2)
	cfg.Security.Senss.Perfect = get(4)&2 != 0
	cfg.Security.Senss.Adaptive = get(4)&4 != 0
	cfg.Seed = rigSeed ^ uint64(get(5))
	cfg.Oracle = true
	if err := cfg.Validate(); err != nil {
		return nil // the shape is rejected up front; nothing to check
	}

	m := machine.New(cfg)
	shared := m.Alloc(16 * 64)
	for i := 0; i < 16; i++ {
		m.InitWord(shared+uint64(i)*64, uint64(i))
	}
	progs := make([]cpu.Program, cfg.Procs)
	for i := 0; i < cfg.Procs; i++ {
		i := i
		progs[i] = func(c *cpu.Port) {
			for n := 0; n < 30; n++ {
				addr := shared + uint64((n+i)%16)*64
				if (n+i)%3 == 0 {
					c.Store(addr, uint64(n))
				} else {
					v := c.Load(addr)
					c.Store(addr, v+1)
				}
			}
		}
	}
	return checkMachine(m, progs)
}
