package senss

import "testing"

// TestGoldenCycleCounts pins exact cycle counts for one canonical
// configuration. The simulator is deterministic, so any change to these
// numbers means the timing model changed — which must be a deliberate,
// documented decision (update EXPERIMENTS.md alongside this test), never
// an accident.
func TestGoldenCycleCounts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Procs = 4
	cfg.Coherence.L1Size = 4 << 10
	cfg.Coherence.L2Size = 64 << 10
	cfg.CPU.CodeBytes = 2 << 10
	cfg.Security.Mode = SecurityBus
	cfg.Security.Senss.Perfect = true
	cfg.Security.Senss.AuthInterval = 100

	base, sec, err := Compare("falseshare", SizeTest, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Recorded from the reference run (seed 1). See EXPERIMENTS.md.
	const (
		wantBaseCycles = 50895
		wantSecCycles  = 56078
	)
	if base.Cycles != wantBaseCycles {
		t.Errorf("baseline cycles = %d, want %d — the timing model changed; "+
			"if intentional, re-record EXPERIMENTS.md and this golden value",
			base.Cycles, wantBaseCycles)
	}
	if sec.Cycles != wantSecCycles {
		t.Errorf("SENSS cycles = %d, want %d — the timing model changed; "+
			"if intentional, re-record EXPERIMENTS.md and this golden value",
			sec.Cycles, wantSecCycles)
	}
	if sec.BusTotal <= 0 || sec.AuthMsgs == 0 {
		t.Errorf("implausible secured run: %+v", sec)
	}
}
