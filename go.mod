module senss

go 1.22
