package senss

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"senss/internal/farm"
)

// renderAll flattens tables to one comparable string.
func renderAll(tables []*Table) string {
	var b strings.Builder
	for _, t := range tables {
		b.WriteString(t.Render())
		b.WriteString("\n")
	}
	return b.String()
}

// runFigure6On regenerates the Figure 6 grid on a farm with the given
// worker count and cache directory, returning the rendered tables and
// the sweep manifest bytes.
func runFigure6On(t *testing.T, workers int, dir string) (tables string, manifest []byte) {
	t.Helper()
	f, err := farm.New(farm.Options{Workers: workers, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHarnessOn(SizeTest, f)
	out, err := h.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	tag, err := h.SweepTag(6)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(farm.ManifestPath(dir, tag))
	if err != nil {
		t.Fatal(err)
	}
	return renderAll(out), data
}

// TestFigure6DeterministicUnderConcurrency is the subsystem's
// determinism proof: the full Figure 6 grid must produce byte-identical
// tables and byte-identical sweep manifests whether it runs on one
// worker, on eight, or entirely from a warm cache.
func TestFigure6DeterministicUnderConcurrency(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	serialDir, parallelDir := t.TempDir(), t.TempDir()

	serialTables, serialManifest := runFigure6On(t, 1, serialDir)
	parallelTables, parallelManifest := runFigure6On(t, 8, parallelDir)

	if serialTables != parallelTables {
		t.Errorf("tables differ between workers=1 and workers=8:\n%s\nvs\n%s",
			serialTables, parallelTables)
	}
	if string(serialManifest) != string(parallelManifest) {
		t.Errorf("manifests differ between workers=1 and workers=8:\n%s\nvs\n%s",
			serialManifest, parallelManifest)
	}

	// Warm replay: same directory, everything served from cache.
	warmTables, warmManifest := runFigure6On(t, 8, parallelDir)
	if warmTables != parallelTables {
		t.Errorf("warm-cache tables differ from cold run")
	}
	if string(warmManifest) != string(parallelManifest) {
		t.Errorf("warm-cache manifest differs from cold run")
	}
}

// TestFigure6WarmCacheSkipsSimulation pins the caching contract at the
// harness level: after one cold Figure 6 run, regenerating it performs
// zero simulations.
func TestFigure6WarmCacheSkipsSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	dir := t.TempDir()
	f, err := farm.New(farm.Options{Workers: 4, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHarnessOn(SizeTest, f)
	h.Workloads = []string{"falseshare", "lockcontend"}
	if _, err := h.Figure6(); err != nil {
		t.Fatal(err)
	}
	cold := f.Cache().Stats()

	f2, err := farm.New(farm.Options{Workers: 4, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h2 := NewHarnessOn(SizeTest, f2)
	h2.Workloads = []string{"falseshare", "lockcontend"}
	if _, err := h2.Figure6(); err != nil {
		t.Fatal(err)
	}
	warm := f2.Cache().Stats()
	if warm.Misses != 0 {
		t.Errorf("warm run missed %d times (cold stats %+v, warm stats %+v)",
			warm.Misses, cold, warm)
	}
	if warm.DiskHits == 0 {
		t.Errorf("warm run never touched the disk cache: %+v", warm)
	}
}

// TestBaselineDedupeAcrossFigures pins the satellite: Figures 6 and 8
// share identical configurations (and Figure 10's SENSS arm repeats
// them), so regenerating all three on one farm simulates each unique
// config exactly once — the baselines are canonicalized and shared.
func TestBaselineDedupeAcrossFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple figure sweeps")
	}
	f := farm.NewMem(4)
	h := NewHarnessOn(SizeTest, f)
	h.Workloads = []string{"falseshare"}

	if _, err := h.Figure6(); err != nil {
		t.Fatal(err)
	}
	after6 := f.Cache().Stats()
	// Figure 6 on one workload: 2 L2 classes x 2 proc counts x (base, sec)
	// = 8 unique jobs, all cold.
	if after6.Misses != 8 {
		t.Errorf("figure 6 cold misses = %d, want 8", after6.Misses)
	}

	if _, err := h.Figure8(); err != nil {
		t.Fatal(err)
	}
	after8 := f.Cache().Stats()
	// Figure 8 re-measures the same grid: zero new simulations.
	if after8.Misses != after6.Misses {
		t.Errorf("figure 8 re-simulated %d jobs that figure 6 already ran",
			after8.Misses-after6.Misses)
	}

	if _, err := h.Figure10(); err != nil {
		t.Fatal(err)
	}
	after10 := f.Cache().Stats()
	// Figure 10 adds only the combined bus+memory+integrity arm (one new
	// job); its baseline and SENSS arm are already cached.
	if got := after10.Misses - after8.Misses; got != 1 {
		t.Errorf("figure 10 added %d simulations, want 1 (the Mem_OTP_CHash arm)", got)
	}
}

// TestSweepResumesAfterInterruption simulates an interrupted sweep: half
// the Figure 6 grid is pre-warmed, then the full figure runs against the
// same cache directory and must only simulate the other half.
func TestSweepResumesAfterInterruption(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep")
	}
	dir := t.TempDir()
	f, err := farm.New(farm.Options{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHarnessOn(SizeTest, f)
	h.Workloads = []string{"falseshare", "lockcontend"}
	jobs, err := h.FigureJobs(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Warm(jobs[:len(jobs)/2]); err != nil {
		t.Fatal(err)
	}

	f2, err := farm.New(farm.Options{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	h2 := NewHarnessOn(SizeTest, f2)
	h2.Workloads = []string{"falseshare", "lockcontend"}
	if _, err := h2.Figure6(); err != nil {
		t.Fatal(err)
	}
	st := f2.Cache().Stats()
	if int(st.Misses) != len(jobs)-len(jobs)/2 {
		t.Errorf("resumed sweep simulated %d jobs, want %d (the un-warmed half)",
			st.Misses, len(jobs)-len(jobs)/2)
	}

	// The manifest reflects a fully completed sweep.
	tag, err := h2.SweepTag(6)
	if err != nil {
		t.Fatal(err)
	}
	m, err := farm.LoadManifest(dir, tag)
	if err != nil || m == nil {
		t.Fatalf("manifest missing after resume: %v", err)
	}
	if done, failed, pending := m.Counts(); failed != 0 || pending != 0 || done != len(m.Jobs) {
		t.Errorf("resumed manifest counts = %d/%d/%d over %d jobs",
			done, failed, pending, len(m.Jobs))
	}
	if _, err := os.Stat(filepath.Join(dir, m.Jobs[0].Hash+".json")); err != nil {
		t.Errorf("cache entry for manifest job missing: %v", err)
	}
}
