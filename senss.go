// Package senss is the public facade of the SENSS reproduction: a secure
// symmetric shared-memory multiprocessor (HPCA-11, 2005) built on an
// execution-driven SMP simulator.
//
// The typical flow is:
//
//	cfg := senss.DefaultConfig()
//	cfg.Security.Mode = senss.SecurityBus           // enable SENSS
//	run, err := senss.RunWorkload("fft", senss.SizeTest, cfg)
//
// or, comparing against the unprotected baseline:
//
//	base, sec, err := senss.Compare("radix", senss.SizeTest, cfg)
//	fmt.Printf("slowdown: %.2f%%\n", senss.SlowdownPct(base, sec))
//
// Lower-level access (custom programs, attack injection, the SHU protocol
// itself) goes through the internal packages; see DESIGN.md for the map.
package senss

import (
	"senss/internal/core"
	"senss/internal/driver"
	"senss/internal/machine"
	"senss/internal/stats"
	"senss/internal/workload"
)

// Re-exported configuration and result types.
type (
	// Config describes a simulated machine (see machine.Config).
	Config = machine.Config
	// SecurityConfig selects and parameterizes the protection layers.
	SecurityConfig = machine.SecurityConfig
	// Run is the measurement record of one simulation.
	Run = stats.Run
	// Table is a formatted result table.
	Table = stats.Table
	// Machine is an assembled simulated SMP.
	Machine = machine.Machine
	// Workload is a runnable, self-validating kernel.
	Workload = workload.Workload
	// Size selects a workload problem scale.
	Size = workload.Size
)

// Security modes.
const (
	// SecurityOff is the unprotected baseline.
	SecurityOff = machine.SecurityOff
	// SecurityBus enables SENSS bus encryption + authentication.
	SecurityBus = machine.SecurityBus
	// SecurityBusMem adds memory encryption (and optionally integrity).
	SecurityBusMem = machine.SecurityBusMem
)

// Workload problem scales.
const (
	// SizeTest is sub-second; SizeBench matches the figure harness.
	SizeTest  = workload.SizeTest
	SizeBench = workload.SizeBench
)

// Bus encryption/authentication constructions.
const (
	// AuthCBC is the paper's primary design (chained masks + CBC-MAC).
	AuthCBC = core.AuthCBC
	// AuthGF is the §4.3 GCM-style extension (counter-mode masks + GHASH;
	// senders never stall on mask availability).
	AuthGF = core.AuthGF
)

// DefaultConfig returns the paper's Figure 5 machine: 4 × 1 GHz
// processors, 64 KB split L1s, 1 MB L2s, 3.2 GB/s 100 MHz bus, 80-cycle
// AES, 160-cycle hashing; security off.
func DefaultConfig() Config { return machine.DefaultConfig() }

// NewMachine assembles a machine for custom programs.
func NewMachine(cfg Config) *Machine { return machine.New(cfg) }

// NewWorkload constructs one of the built-in workloads: the paper's five
// SPLASH2 kernels (fft, radix, barnes, lu, ocean) or the microbenchmarks
// (falseshare, prodcons, lockcontend).
func NewWorkload(name string, size Size) (Workload, error) {
	return workload.New(name, size)
}

// WorkloadNames lists every built-in workload.
func WorkloadNames() []string { return workload.AllNames() }

// PaperSuite lists the five benchmarks of the paper's evaluation.
func PaperSuite() []string { return workload.PaperSuite() }

// RunWorkload builds a machine from cfg, runs the named workload on all
// processors, validates the computed result, and returns the
// measurements. The implementation is internal/driver.Run — shared with
// the internal/farm orchestration pool, which runs fleets of these
// concurrently with content-addressed result caching.
func RunWorkload(name string, size Size, cfg Config) (Run, error) {
	return driver.Run(name, size, cfg)
}

// Compare runs the workload on the unprotected baseline and on cfg,
// returning both measurements. cfg.Security.Mode selects the protected
// variant; the baseline copies cfg with security off. The implementation
// is internal/driver.Compare, shared with the serving and farm layers.
func Compare(name string, size Size, cfg Config) (base, secure Run, err error) {
	return driver.Compare(name, size, cfg)
}

// SlowdownPct is the paper's "% slowdown" metric.
func SlowdownPct(base, secure Run) float64 { return stats.SlowdownPct(base, secure) }

// TrafficIncreasePct is the paper's "bus activity increase" metric.
func TrafficIncreasePct(base, secure Run) float64 {
	return stats.TrafficIncreasePct(base, secure)
}
